// Lane executor experiment — wave-width sweep. One pre-decoded program, one
// worker, wave width W in {1, 2, 4, 8}: W = 1 is the scalar interpreter
// walk (the pre-lanes engine), wider waves run all W jobs through the SoA
// lane executor and the dispatched vector field kernels. The headline
// metric is the laned-vs-scalar throughput ratio measured in-process —
// both paths see the same ambient load, so the ratio is stable where
// absolute jobs/s on a shared host is not. The 8-worker leg guards the
// queue-chunking fix (8 workers must not fall below 1 worker again).
//
// Gated by tools/baselines/bench_lanes_baseline.jsonl via perf_regress:
// the full-wave ratio must hold >= 5x, 8w/1w >= 1, and every lane output
// must match the software golden model bitwise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "engine/batch.hpp"
#include "field/fp_lanes.hpp"

namespace {

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fourq;
  bench::parse_bench_args(argc, argv);

  bench::print_header("Lane executor — wave-width sweep (1 = scalar path)");

  engine::CompileKey key;
  key.kind = engine::ProgramKind::kSingleSm;
  key.trace.endo = trace::EndoVariant::kFunctional;

  constexpr int kJobs = 256;
  Rng rng(20260808);
  curve::Affine base = curve::deterministic_point(1);
  std::vector<engine::SmJob> jobs(kJobs);
  for (auto& j : jobs) j = engine::SmJob{rng.next_u256(), base};

  engine::CompileCache cache;
  auto run_cfg = [&](int workers, int lanes) {
    engine::EngineOptions eopt;
    eopt.workers = workers;
    eopt.lanes = lanes;
    eopt.key = key;
    eopt.cache = &cache;
    engine::BatchEngine eng(eopt);
    eng.program();
    eng.run(jobs);  // warm-up: arenas sized, cache hot
    double best = 0.0;
    std::vector<engine::SmResult> results;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      results = eng.run(jobs);
      best = std::max(best, kJobs / secs_since(t0));
    }
    return std::pair<double, std::vector<engine::SmResult>>(best, std::move(results));
  };

  std::printf("field kernels: %s  (program: functional single-SM, %d jobs)\n\n",
              field::lanes::active().name, kJobs);
  std::printf("%-34s %12s %14s\n", "Configuration", "jobs/s", "vs scalar");
  bench::print_rule(62);

  // Per-lane bitwise check against the software golden model, shared by
  // every configuration (the outputs must not depend on W or workers).
  std::vector<curve::Affine> golden(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i)
    golden[i] = curve::to_affine(curve::scalar_mul(jobs[i].k, jobs[i].base));
  int mismatches = 0;
  auto check = [&](const std::vector<engine::SmResult>& results) {
    for (size_t i = 0; i < jobs.size(); ++i)
      if (!(results[i].out.x == golden[i].x) || !(results[i].out.y == golden[i].y))
        ++mismatches;
  };

  bench::JsonRecorder rec("lanes");
  double scalar_jps = 0.0, full_jps = 0.0;
  for (int w : {1, 2, 4, 8}) {
    auto [jps, results] = run_cfg(1, w);
    check(results);
    if (w == 1) scalar_jps = jps;
    if (w == 8) full_jps = jps;
    char label[64];
    std::snprintf(label, sizeof label, "1 worker, %d lane%s%s", w, w == 1 ? "" : "s",
                  w == 1 ? " (scalar path)" : "");
    std::printf("%-34s %12.1f %13.2fx\n", label, jps, jps / scalar_jps);
    char metric[32];
    std::snprintf(metric, sizeof metric, "lanes.%d.jobs_per_s", w);
    rec.record(metric, jps, "jobs/s");
  }

  auto [jps_8w, results_8w] = run_cfg(8, 8);
  check(results_8w);
  std::printf("%-34s %12.1f %13.2fx\n", "8 workers, 8 lanes", jps_8w,
              jps_8w / scalar_jps);

  const double speedup = full_jps / scalar_jps;
  const double ratio_8w = jps_8w / full_jps;
  std::printf("\nfull-wave speedup vs scalar path: %.2fx   8w/1w: %.2f   "
              "cross-check: %s\n",
              speedup, ratio_8w, mismatches == 0 ? "all match" : "MISMATCH");

  rec.record("engine.1w.jobs_per_s", full_jps, "jobs/s");
  rec.record("engine.8w.jobs_per_s", jps_8w, "jobs/s");
  rec.record("speedup_laned_vs_scalar", speedup, "x");
  rec.record("ratio_8w_vs_1w", ratio_8w, "x");
  rec.record("check.mismatches", mismatches);

  std::printf(
      "\nW = 1 executes jobs one at a time through the scalar interpreter;\n"
      "wider waves drive W jobs through one pass over the cycle-sorted\n"
      "issue streams, each field op an up-to-W-lane kernel call. The ratio\n"
      "is measured in-process so shared-host load cancels out of the gate.\n");
  return mismatches == 0 ? 0 : 1;
}
