// Shared helpers for the experiment-reproduction binaries: fixed-width
// table printing, machine-readable result records, and the standard
// trace/compile shortcuts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "curve/scalarmul.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"
#include "sched/compile.hpp"
#include "trace/eval.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::bench {

// Where JsonRecorder writes its BENCH_<name>.json files. Resolution order:
// the --json-dir flag (via parse_bench_args), $FOURQ_BENCH_JSON_DIR, then
// the working directory. The directory is created on first use.
inline std::string& json_dir_override() {
  static std::string dir;
  return dir;
}

inline std::string json_dir() {
  if (!json_dir_override().empty()) return json_dir_override();
  const char* env = std::getenv("FOURQ_BENCH_JSON_DIR");
  return (env && *env) ? std::string(env) : std::string();
}

// Standard CLI handling for the bench binaries: `--json-dir DIR` routes the
// machine-readable records, `--help` documents it. Unknown flags abort so
// typos fail loudly in scripts.
inline void parse_bench_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-dir") == 0 && i + 1 < argc) {
      json_dir_override() = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [--json-dir DIR]\n\n"
                  "  --json-dir DIR  write BENCH_<name>.json records into DIR\n"
                  "                  (default: $FOURQ_BENCH_JSON_DIR, else cwd)\n",
                  argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n", argv[0], argv[i]);
      std::exit(2);
    }
  }
}

// Machine-readable companion to the console tables: one JSON object per
// recorded metric, written to BENCH_<name>.json (JSON lines) in the
// directory selected by json_dir() (default: the working directory). The
// records use the same {"bench","metric","value"} shape tools/perf_regress
// consumes, so bench results can be diffed against a checked-in baseline
// directly.
class JsonRecorder {
 public:
  explicit JsonRecorder(const std::string& bench) : bench_(bench) {
    std::string dir = json_dir();
    std::string path;
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec)
        std::fprintf(stderr, "bench: cannot create %s: %s\n", dir.c_str(),
                     ec.message().c_str());
      path = dir + "/";
    }
    path += "BENCH_" + bench + ".json";
    f_ = std::fopen(path.c_str(), "w");
    if (!f_) std::fprintf(stderr, "bench: cannot open %s for JSON records\n", path.c_str());
    // First line: shared provenance header (schema, commit, UTC timestamp),
    // so two BENCH_*.json files being diffed always identify their builds.
    // perf_regress keys on "metric" and skips this line transparently.
    if (f_) {
      std::fputs(obs::provenance_line("fourq.bench.v1").c_str(), f_);
      std::fflush(f_);
    }
  }
  ~JsonRecorder() {
    if (f_) std::fclose(f_);
  }
  JsonRecorder(const JsonRecorder&) = delete;
  JsonRecorder& operator=(const JsonRecorder&) = delete;

  void record(const std::string& metric, double value, const std::string& unit = "") {
    if (!f_) return;
    std::string line = "{\"bench\":\"" + obs::json_escape(bench_) + "\",\"metric\":\"" +
                       obs::json_escape(metric) + "\"";
    char num[48];
    std::snprintf(num, sizeof num, "%.10g", value);
    line += std::string(",\"value\":") + num;
    if (!unit.empty()) line += ",\"unit\":\"" + obs::json_escape(unit) + "\"";
    line += "}\n";
    std::fputs(line.c_str(), f_);
    std::fflush(f_);
  }

 private:
  std::string bench_;
  std::FILE* f_ = nullptr;
};

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

// Standard input bindings for an SM trace over base point `p`.
inline trace::InputBindings sm_bindings(const trace::SmTrace& sm, const curve::Affine& p) {
  trace::InputBindings b;
  b.emplace_back(sm.in_zero, curve::Fp2());
  b.emplace_back(sm.in_one, curve::Fp2::from_u64(1));
  b.emplace_back(sm.in_two_d, curve::curve_2d());
  b.emplace_back(sm.in_px, p.x);
  b.emplace_back(sm.in_py, p.y);
  for (size_t i = 0; i < sm.in_endo_consts.size(); ++i)
    b.emplace_back(sm.in_endo_consts[i], curve::Fp2::from_u64(3 + i, 7 + i));
  return b;
}

}  // namespace fourq::bench
