// Shared helpers for the experiment-reproduction binaries: fixed-width
// table printing and the standard trace/compile shortcuts.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "curve/scalarmul.hpp"
#include "sched/compile.hpp"
#include "trace/eval.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::bench {

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

// Standard input bindings for an SM trace over base point `p`.
inline trace::InputBindings sm_bindings(const trace::SmTrace& sm, const curve::Affine& p) {
  trace::InputBindings b;
  b.emplace_back(sm.in_zero, curve::Fp2());
  b.emplace_back(sm.in_one, curve::Fp2::from_u64(1));
  b.emplace_back(sm.in_two_d, curve::curve_2d());
  b.emplace_back(sm.in_px, p.x);
  b.emplace_back(sm.in_py, p.y);
  for (size_t i = 0; i < sm.in_endo_consts.size(); ++i)
    b.emplace_back(sm.in_endo_consts[i], curve::Fp2::from_u64(3 + i, 7 + i));
  return b;
}

}  // namespace fourq::bench
