// SHA-256 known-answer tests (FIPS 180-4 vectors) and streaming behaviour.
#include "hash/sha256.hpp"

#include <gtest/gtest.h>

namespace fourq::hash {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly";
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finalize(), Sha256::digest(msg)) << split;
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths straddling the 55/56/64-byte padding edge all hash
  // consistently under streaming vs one-shot.
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string m(len, 'x');
    Sha256 h;
    for (char ch : m) h.update(std::string(1, ch));
    EXPECT_EQ(h.finalize(), Sha256::digest(m)) << len;
  }
}

TEST(Sha256, ReuseAfterFinalizeRejected) {
  Sha256 h;
  h.update("abc");
  h.finalize();
  EXPECT_THROW(h.update("more"), std::logic_error);
  EXPECT_THROW(h.finalize(), std::logic_error);
}

TEST(Sha256, DigestToU256BigEndian) {
  // digest bytes 00 01 02 ... 1f interpreted big-endian.
  Sha256::Digest d;
  for (size_t i = 0; i < 32; ++i) d[i] = static_cast<uint8_t>(i);
  U256 v = digest_to_u256(d);
  EXPECT_EQ(v.w[3], 0x0001020304050607ull);
  EXPECT_EQ(v.w[0], 0x18191a1b1c1d1e1full);
}

TEST(Sha256, DistinctMessagesDistinctDigests) {
  EXPECT_NE(Sha256::digest("message1"), Sha256::digest("message2"));
  EXPECT_NE(Sha256::digest("a"), Sha256::digest(std::string("a\0", 2)));
}

}  // namespace
}  // namespace fourq::hash
