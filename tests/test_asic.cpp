// Cycle-accurate simulator tests: the compiled microcode, executed through
// the modelled datapath, must agree with the trace interpreter and — for
// the functional program variant — with the curve-level scalar
// multiplication. This is the repository's "RTL vs golden model" check.
#include "asic/simulator.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::asic {
namespace {

using curve::Fp2;
using trace::EvalContext;
using trace::InputBindings;

InputBindings sm_bindings(const trace::SmTrace& sm, const curve::Affine& p) {
  InputBindings b;
  b.emplace_back(sm.in_zero, Fp2());
  b.emplace_back(sm.in_one, Fp2::from_u64(1));
  b.emplace_back(sm.in_two_d, curve::curve_2d());
  b.emplace_back(sm.in_px, p.x);
  b.emplace_back(sm.in_py, p.y);
  for (size_t i = 0; i < sm.in_endo_consts.size(); ++i)
    b.emplace_back(sm.in_endo_consts[i], Fp2::from_u64(3 + i, 7 + i));
  return b;
}

TEST(Simulator, LoopBodyMatchesInterpreter) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileResult r = sched::compile_program(body.program, {});

  curve::PointR1 q = curve::dbl(curve::to_r1(curve::deterministic_point(31)));
  curve::PointR2 e = curve::to_r2(curve::to_r1(curve::deterministic_point(32)));
  InputBindings b;
  b.emplace_back(body.q_inputs[0], q.X);
  b.emplace_back(body.q_inputs[1], q.Y);
  b.emplace_back(body.q_inputs[2], q.Z);
  b.emplace_back(body.q_inputs[3], q.Ta);
  b.emplace_back(body.q_inputs[4], q.Tb);
  b.emplace_back(body.table_inputs[0], e.xpy);
  b.emplace_back(body.table_inputs[1], e.ymx);
  b.emplace_back(body.table_inputs[2], e.z2);
  b.emplace_back(body.table_inputs[3], e.dt2);

  SimResult sim = simulate(r.sm, b, EvalContext{});
  auto ref = trace::evaluate(body.program, b, EvalContext{});
  for (const char* name : {"Qx", "Qy", "Qz", "Ta", "Tb"})
    EXPECT_EQ(sim.outputs.at(name), ref.at(name)) << name;
  EXPECT_EQ(sim.stats.mul_issues, 15);
  EXPECT_EQ(sim.stats.addsub_issues, 12);
}

class FullSmSim : public ::testing::Test {
 protected:
  static const sched::CompileResult& compiled() {
    static sched::CompileResult r = [] {
      trace::SmTrace sm = trace::build_sm_trace({});
      return sched::compile_program(sm.program, {});
    }();
    return r;
  }
  static const trace::SmTrace& smtrace() {
    static trace::SmTrace sm = trace::build_sm_trace({});
    return sm;
  }
};

TEST_F(FullSmSim, MatchesCurveScalarMul) {
  curve::Affine p = curve::deterministic_point(33);
  InputBindings b = sm_bindings(smtrace(), p);
  Rng rng(501);
  for (int i = 0; i < 3; ++i) {
    U256 k = rng.next_u256();
    curve::Decomposition dec = curve::decompose(k);
    curve::RecodedScalar rec = curve::recode(dec.a);
    SimResult sim = simulate(compiled().sm, b, EvalContext{&rec, dec.k_was_even});
    curve::Affine expect = curve::to_affine(curve::scalar_mul(k, p));
    EXPECT_EQ(sim.outputs.at("x"), expect.x) << "k=" << k.to_hex();
    EXPECT_EQ(sim.outputs.at("y"), expect.y);
  }
}

TEST_F(FullSmSim, EvenScalarCorrectionWorksInHardware) {
  curve::Affine p = curve::deterministic_point(34);
  InputBindings b = sm_bindings(smtrace(), p);
  U256 k = Rng(502).next_u256();
  k.set_bit(0, false);
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  SimResult sim = simulate(compiled().sm, b, EvalContext{&rec, true});
  curve::Affine expect = curve::to_affine(curve::scalar_mul(k, p));
  EXPECT_EQ(sim.outputs.at("x"), expect.x);
  EXPECT_EQ(sim.outputs.at("y"), expect.y);
}

TEST_F(FullSmSim, StatsAreConsistent) {
  curve::Affine p = curve::deterministic_point(35);
  InputBindings b = sm_bindings(smtrace(), p);
  U256 k(12345);
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  SimResult sim = simulate(compiled().sm, b, EvalContext{&rec, dec.k_was_even});

  trace::OpStats st = trace::count_ops(smtrace().program);
  EXPECT_EQ(sim.stats.mul_issues, st.muls);
  EXPECT_EQ(sim.stats.addsub_issues, st.addsubs);
  EXPECT_EQ(sim.stats.cycles, compiled().sm.cycles());
  EXPECT_LE(sim.stats.max_reads_in_cycle, 4);
  EXPECT_GT(sim.stats.forwarded_operands, 0);
  EXPECT_GT(sim.stats.mul_utilisation(), 0.4);  // the multiplier is the bottleneck
}

TEST(Simulator, PaperCostVariantMatchesInterpreter) {
  trace::SmTraceOptions topt;
  topt.endo = trace::EndoVariant::kPaperCost;
  trace::SmTrace sm = trace::build_sm_trace(topt);
  sched::CompileResult r = sched::compile_program(sm.program, {});

  curve::Affine p = curve::deterministic_point(36);
  InputBindings b;
  b.emplace_back(sm.in_zero, Fp2());
  b.emplace_back(sm.in_one, Fp2::from_u64(1));
  b.emplace_back(sm.in_two_d, curve::curve_2d());
  b.emplace_back(sm.in_px, p.x);
  b.emplace_back(sm.in_py, p.y);
  for (size_t i = 0; i < sm.in_endo_consts.size(); ++i)
    b.emplace_back(sm.in_endo_consts[i], Fp2::from_u64(11 + i, 13 + i));

  U256 k = Rng(503).next_u256();
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  EvalContext ctx{&rec, dec.k_was_even};
  SimResult sim = simulate(r.sm, b, ctx);
  auto ref = trace::evaluate(sm.program, b, ctx);
  EXPECT_EQ(sim.outputs.at("x"), ref.at("x"));
  EXPECT_EQ(sim.outputs.at("y"), ref.at("y"));
}

TEST(Simulator, SequentialScheduleAlsoCorrect) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileOptions copt;
  copt.solver = sched::Solver::kSequential;
  sched::CompileResult r = sched::compile_program(body.program, copt);

  curve::PointR1 q = curve::to_r1(curve::deterministic_point(37));
  curve::PointR2 e = curve::to_r2(curve::to_r1(curve::deterministic_point(38)));
  InputBindings b;
  b.emplace_back(body.q_inputs[0], q.X);
  b.emplace_back(body.q_inputs[1], q.Y);
  b.emplace_back(body.q_inputs[2], q.Z);
  b.emplace_back(body.q_inputs[3], q.Ta);
  b.emplace_back(body.q_inputs[4], q.Tb);
  b.emplace_back(body.table_inputs[0], e.xpy);
  b.emplace_back(body.table_inputs[1], e.ymx);
  b.emplace_back(body.table_inputs[2], e.z2);
  b.emplace_back(body.table_inputs[3], e.dt2);
  SimResult sim = simulate(r.sm, b, EvalContext{});
  auto ref = trace::evaluate(body.program, b, EvalContext{});
  EXPECT_EQ(sim.outputs.at("Qx"), ref.at("Qx"));
  // No forwarding opportunities exist in a fully serial schedule... results
  // land in the RF before the next op issues, so no bus operands are used.
  EXPECT_EQ(sim.stats.forwarded_operands, 0);
}

TEST(Simulator, DualMultiplierDatapathCorrect) {
  // A 2-multiplier / 2-adder machine still produces bit-exact results.
  trace::SmTraceOptions topt;
  topt.endo = trace::EndoVariant::kPaperCost;
  trace::SmTrace sm = trace::build_sm_trace(topt);
  sched::CompileOptions copt;
  copt.cfg.num_multipliers = 2;
  copt.cfg.num_addsubs = 2;
  copt.cfg.rf_read_ports = 8;
  copt.cfg.rf_write_ports = 4;
  sched::CompileResult r = sched::compile_program(sm.program, copt);

  curve::Affine p = curve::deterministic_point(41);
  trace::InputBindings b;
  b.emplace_back(sm.in_zero, Fp2());
  b.emplace_back(sm.in_one, Fp2::from_u64(1));
  b.emplace_back(sm.in_two_d, curve::curve_2d());
  b.emplace_back(sm.in_px, p.x);
  b.emplace_back(sm.in_py, p.y);
  for (size_t i = 0; i < sm.in_endo_consts.size(); ++i)
    b.emplace_back(sm.in_endo_consts[i], Fp2::from_u64(17 + i, 19 + i));

  U256 k = Rng(504).next_u256();
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  EvalContext ctx{&rec, dec.k_was_even};
  SimResult sim = simulate(r.sm, b, ctx);
  auto ref = trace::evaluate(sm.program, b, ctx);
  EXPECT_EQ(sim.outputs.at("x"), ref.at("x"));
  EXPECT_EQ(sim.outputs.at("y"), ref.at("y"));
  // It must actually have used the second multiplier somewhere.
  bool dual_issue = false;
  for (const auto& w : r.sm.rom)
    if (w.mul.size() >= 2) dual_issue = true;
  EXPECT_TRUE(dual_issue);
}

TEST(Simulator, MissingInputBindingRejected) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileResult r = sched::compile_program(body.program, {});
  EXPECT_THROW(simulate(r.sm, {}, EvalContext{}), std::logic_error);
}

TEST(Simulator, CorruptedRomDetected) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileResult r = sched::compile_program(body.program, {});
  // Drop a writeback whose register is read by a later control word, so a
  // later read must hit an uninitialised (or stale) register.
  sched::CompiledSm broken = r.sm;
  bool dropped = false;
  for (size_t t = 0; t < broken.rom.size() && !dropped; ++t) {
    auto& w = broken.rom[t];
    for (size_t wi = 0; wi < w.writebacks.size() && !dropped; ++wi) {
      int reg = w.writebacks[wi].reg;
      auto reads_reg = [&](const sched::SrcSel& s) {
        return s.kind == sched::SrcSel::Kind::kReg && s.reg == reg;
      };
      for (size_t u = t + 1; u < broken.rom.size() && !dropped; ++u) {
        const auto& later = broken.rom[u];
        for (const auto& slot : later.mul)
          if (reads_reg(slot.a) || reads_reg(slot.b)) dropped = true;
        for (const auto& slot : later.addsub)
          if (reads_reg(slot.a) || reads_reg(slot.b)) dropped = true;
        if (dropped) w.writebacks.erase(w.writebacks.begin() + static_cast<long>(wi));
      }
    }
  }
  ASSERT_TRUE(dropped);
  curve::PointR1 q = curve::to_r1(curve::deterministic_point(39));
  curve::PointR2 e = curve::to_r2(curve::to_r1(curve::deterministic_point(40)));
  InputBindings b;
  b.emplace_back(body.q_inputs[0], q.X);
  b.emplace_back(body.q_inputs[1], q.Y);
  b.emplace_back(body.q_inputs[2], q.Z);
  b.emplace_back(body.q_inputs[3], q.Ta);
  b.emplace_back(body.q_inputs[4], q.Tb);
  b.emplace_back(body.table_inputs[0], e.xpy);
  b.emplace_back(body.table_inputs[1], e.ymx);
  b.emplace_back(body.table_inputs[2], e.z2);
  b.emplace_back(body.table_inputs[3], e.dt2);
  // Either the simulator traps an uninitialised read, or (if the slot held a
  // stale earlier value) the outputs must diverge from the golden model.
  auto ref = trace::evaluate(body.program, b, EvalContext{});
  bool detected = false;
  try {
    SimResult sim = simulate(broken, b, EvalContext{});
    for (const char* name : {"Qx", "Qy", "Qz", "Ta", "Tb"})
      if (sim.outputs.at(name) != ref.at(name)) detected = true;
  } catch (const std::logic_error&) {
    detected = true;
  }
  EXPECT_TRUE(detected) << "dropped writeback went unnoticed";
}

}  // namespace
}  // namespace fourq::asic
