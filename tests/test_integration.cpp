// End-to-end integration: the full application story in one test — key
// generation, message signing, hardware-offloaded verification on the
// cycle-accurate model (both one-SM-at-a-time and dual-stream), batch
// verification, and wire-format round-trips. Everything a deployment would
// exercise, chained together.
#include <gtest/gtest.h>

#include "asic/simulator.hpp"
#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "dsa/schnorrq.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace fourq {
namespace {

using curve::Fp2;

class Integration : public ::testing::Test {
 protected:
  dsa::SchnorrQ scheme;
  Rng rng{20260706};

  static const trace::SmTrace& sm_trace() {
    static trace::SmTrace t = trace::build_sm_trace({});
    return t;
  }
  static const sched::CompiledSm& compiled() {
    static sched::CompiledSm c = sched::compile_program(sm_trace().program, {}).sm;
    return c;
  }

  curve::Affine hw_scalar_mul(const U256& k, const curve::Affine& p) {
    trace::InputBindings b;
    b.emplace_back(sm_trace().in_zero, Fp2());
    b.emplace_back(sm_trace().in_one, Fp2::from_u64(1));
    b.emplace_back(sm_trace().in_two_d, curve::curve_2d());
    b.emplace_back(sm_trace().in_px, p.x);
    b.emplace_back(sm_trace().in_py, p.y);
    curve::Decomposition dec = curve::decompose(k);
    curve::RecodedScalar rec = curve::recode(dec.a);
    asic::SimResult res =
        asic::simulate(compiled(), b, trace::EvalContext{&rec, dec.k_was_even});
    return curve::Affine{res.outputs.at("x"), res.outputs.at("y")};
  }
};

TEST_F(Integration, SignSoftwareVerifyOnHardware) {
  auto kp = scheme.keygen(rng);
  const std::string msg = "integration: emergency stop broadcast";
  auto sig = scheme.sign(kp, msg);

  // Host recomputes the challenge, offloads both SMs.
  U256 e = scheme.challenge(sig.r, kp.pub, msg);
  curve::Affine sG = hw_scalar_mul(sig.s, scheme.generator());
  curve::Affine eQ = hw_scalar_mul(e, kp.pub);
  curve::PointR1 rhs =
      curve::add(curve::to_r1(sig.r), curve::to_r2(curve::to_r1(eQ)));
  EXPECT_TRUE(curve::equal(curve::to_r1(sG), rhs));

  // And the software verifier agrees.
  EXPECT_TRUE(scheme.verify(kp.pub, msg, sig));
}

TEST_F(Integration, WireFormatsSurviveTransport) {
  auto kp = scheme.keygen(rng);
  const std::string msg = "integration: toll gate open";
  auto sig = scheme.sign(kp, msg);

  // Serialise everything, "transmit", deserialise, verify.
  auto pub_bytes = scheme.encode_public_key(kp.pub);
  auto sig_bytes = scheme.encode_signature(sig);
  auto pub2 = scheme.decode_public_key(pub_bytes);
  auto sig2 = scheme.decode_signature(sig_bytes);
  ASSERT_TRUE(pub2 && sig2);
  EXPECT_TRUE(scheme.verify(*pub2, msg, *sig2));
  // Tamper with one byte anywhere: never verifies.
  for (size_t i = 0; i < sig_bytes.size(); i += 13) {
    auto bad = sig_bytes;
    bad[i] ^= 0x40;
    auto s = scheme.decode_signature(bad);
    if (s) {
      EXPECT_FALSE(scheme.verify(*pub2, msg, *s)) << i;
    }
  }
}

TEST_F(Integration, MixedFleetBatchAndHardwareAgree) {
  std::vector<dsa::SchnorrQ::BatchItem> batch;
  for (int i = 0; i < 4; ++i) {
    auto kp = scheme.keygen(rng);
    std::string msg = "fleet msg " + std::to_string(i);
    auto sig = scheme.sign(kp, msg);
    batch.push_back({kp.pub, msg, sig});

    // Hardware path agrees per item.
    U256 e = scheme.challenge(sig.r, kp.pub, msg);
    curve::Affine sG = hw_scalar_mul(sig.s, scheme.generator());
    curve::Affine eQ = hw_scalar_mul(e, kp.pub);
    curve::PointR1 rhs =
        curve::add(curve::to_r1(sig.r), curve::to_r2(curve::to_r1(eQ)));
    EXPECT_TRUE(curve::equal(curve::to_r1(sG), rhs)) << i;
  }
  EXPECT_TRUE(scheme.verify_batch(batch, rng));
}

}  // namespace
}  // namespace fourq
