// Cross-feature tests: the looped controller's segments through the ROM
// serialisation and disassembly tooling, and counter-indexed reads through
// the packed-word format.
#include <gtest/gtest.h>

#include <sstream>

#include "asic/looped.hpp"
#include "asic/romfile.hpp"
#include "asic/verilog.hpp"

namespace fourq::asic {
namespace {

TEST(LoopedRomFile, BodySegmentSerialises) {
  LoopedSm sm = build_looped_sm({});
  std::stringstream ss;
  save_rom(sm.body, ss);
  sched::CompiledSm back = load_rom(ss);
  EXPECT_EQ(back.cycles(), sm.body.cycles());
  EXPECT_EQ(disassemble(back), disassemble(sm.body));
}

TEST(LoopedRomFile, BodyDisassemblyShowsIndexedReads) {
  LoopedSm sm = build_looped_sm({});
  std::string listing = disassemble(sm.body);
  // Digit-addressed table reads appear as T[map]@iter with the counter
  // sentinel (-2).
  EXPECT_NE(listing.find("T["), std::string::npos);
  EXPECT_NE(listing.find("@-2"), std::string::npos);
}

TEST(LoopedRomFile, CounterReadsSurvivePacking) {
  LoopedSmOptions opt;
  opt.body_unroll = 5;
  LoopedSm sm = build_looped_sm(opt);
  PackedRom rom = pack_rom(sm.body);
  int counter_reads = 0;
  for (int t = 0; t < sm.body.cycles(); ++t) {
    sched::CtrlWord back = unpack_word(rom, sm.body.cfg, t);
    const sched::CtrlWord& orig = sm.body.rom[static_cast<size_t>(t)];
    ASSERT_EQ(back.mul.size(), orig.mul.size());
    for (size_t i = 0; i < back.mul.size(); ++i) {
      EXPECT_EQ(back.mul[i].a.iter, orig.mul[i].a.iter);
      EXPECT_EQ(back.mul[i].b.iter, orig.mul[i].b.iter);
      if (trace::is_counter_iter(back.mul[i].a.iter)) ++counter_reads;
      if (trace::is_counter_iter(back.mul[i].b.iter)) ++counter_reads;
    }
    ASSERT_EQ(back.addsub.size(), orig.addsub.size());
    for (size_t i = 0; i < back.addsub.size(); ++i) {
      EXPECT_EQ(back.addsub[i].a.iter, orig.addsub[i].a.iter);
      EXPECT_EQ(back.addsub[i].b.iter, orig.addsub[i].b.iter);
    }
  }
  // The unrolled body reads several digit offsets.
  EXPECT_GT(counter_reads, 0);
}

TEST(LoopedRomFile, AllSegmentsEmitVerilog) {
  LoopedSm sm = build_looped_sm({});
  for (const sched::CompiledSm* seg : {&sm.prologue, &sm.body, &sm.epilogue}) {
    std::string v = emit_verilog(*seg, "seg");
    EXPECT_NE(v.find("module seg"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
  }
}

}  // namespace
}  // namespace fourq::asic
