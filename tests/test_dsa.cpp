// Signature-scheme tests: Schnorr over FourQ and ECDSA over P-256
// (paper §II-A workflow), including negative cases.
#include <gtest/gtest.h>

#include "dsa/ecdsa_fourq.hpp"
#include "dsa/ecdsa_p256.hpp"
#include "dsa/schnorrq.hpp"

namespace fourq::dsa {
namespace {

class SchnorrTest : public ::testing::Test {
 protected:
  SchnorrQ scheme;
  Rng rng{301};
};

TEST_F(SchnorrTest, SignVerifyRoundTrip) {
  auto kp = scheme.keygen(rng);
  for (const char* msg : {"", "hello", "intelligent transportation systems"}) {
    auto sig = scheme.sign(kp, msg);
    EXPECT_TRUE(scheme.verify(kp.pub, msg, sig)) << msg;
  }
}

TEST_F(SchnorrTest, DeterministicSignatures) {
  auto kp = scheme.keygen(rng);
  auto s1 = scheme.sign(kp, "msg");
  auto s2 = scheme.sign(kp, "msg");
  EXPECT_EQ(s1.s, s2.s);
  EXPECT_EQ(s1.r.x, s2.r.x);
}

TEST_F(SchnorrTest, RejectsWrongMessage) {
  auto kp = scheme.keygen(rng);
  auto sig = scheme.sign(kp, "original");
  EXPECT_FALSE(scheme.verify(kp.pub, "tampered", sig));
}

TEST_F(SchnorrTest, RejectsWrongKey) {
  auto kp1 = scheme.keygen(rng);
  auto kp2 = scheme.keygen(rng);
  auto sig = scheme.sign(kp1, "msg");
  EXPECT_FALSE(scheme.verify(kp2.pub, "msg", sig));
}

TEST_F(SchnorrTest, RejectsMangledSignature) {
  auto kp = scheme.keygen(rng);
  auto sig = scheme.sign(kp, "msg");
  auto bad = sig;
  bad.s = addmod(bad.s, U256(1), scheme.order());
  EXPECT_FALSE(scheme.verify(kp.pub, "msg", bad));
  auto bad2 = sig;
  bad2.r.x = bad2.r.x + curve::Fp2::from_u64(1);
  EXPECT_FALSE(scheme.verify(kp.pub, "msg", bad2));
}

TEST_F(SchnorrTest, RejectsOutOfRangeS) {
  auto kp = scheme.keygen(rng);
  auto sig = scheme.sign(kp, "msg");
  sig.s = scheme.order();
  EXPECT_FALSE(scheme.verify(kp.pub, "msg", sig));
}

TEST_F(SchnorrTest, PublicKeyRecomputation) {
  auto kp = scheme.keygen(rng);
  auto pub = scheme.public_key(kp.secret);
  EXPECT_EQ(pub.x, kp.pub.x);
  EXPECT_EQ(pub.y, kp.pub.y);
}

TEST_F(SchnorrTest, BatchVerifyAcceptsValidBatch) {
  std::vector<SchnorrQ::BatchItem> items;
  for (int i = 0; i < 6; ++i) {
    auto kp = scheme.keygen(rng);
    std::string msg = "batch message " + std::to_string(i);
    items.push_back({kp.pub, msg, scheme.sign(kp, msg)});
  }
  EXPECT_TRUE(scheme.verify_batch(items, rng));
}

TEST_F(SchnorrTest, BatchVerifyRejectsOneBadSignature) {
  std::vector<SchnorrQ::BatchItem> items;
  for (int i = 0; i < 5; ++i) {
    auto kp = scheme.keygen(rng);
    std::string msg = "batch message " + std::to_string(i);
    items.push_back({kp.pub, msg, scheme.sign(kp, msg)});
  }
  items[3].msg += " (tampered)";
  EXPECT_FALSE(scheme.verify_batch(items, rng));
}

TEST_F(SchnorrTest, BatchVerifyRejectsSwappedSignatures) {
  auto kp1 = scheme.keygen(rng);
  auto kp2 = scheme.keygen(rng);
  auto s1 = scheme.sign(kp1, "m1");
  auto s2 = scheme.sign(kp2, "m2");
  std::vector<SchnorrQ::BatchItem> items = {{kp1.pub, "m1", s2}, {kp2.pub, "m2", s1}};
  EXPECT_FALSE(scheme.verify_batch(items, rng));
}

TEST_F(SchnorrTest, BatchVerifyEmptyAndSingleton) {
  EXPECT_TRUE(scheme.verify_batch({}, rng));
  auto kp = scheme.keygen(rng);
  auto sig = scheme.sign(kp, "solo");
  EXPECT_TRUE(scheme.verify_batch({{kp.pub, "solo", sig}}, rng));
}

TEST_F(SchnorrTest, BatchVerifyRejectsOutOfRangeS) {
  auto kp = scheme.keygen(rng);
  auto sig = scheme.sign(kp, "m");
  sig.s = scheme.order();
  EXPECT_FALSE(scheme.verify_batch({{kp.pub, "m", sig}}, rng));
}

TEST_F(SchnorrTest, BatchVerifyBackendsAgreeOnAcceptAndReject) {
  // Every MSM backend must reach the same verdict on the same batch — both
  // for an all-valid batch and for one with a tampered message.
  std::vector<SchnorrQ::BatchItem> items;
  for (int i = 0; i < 8; ++i) {
    auto kp = scheme.keygen(rng);
    std::string msg = "backend agreement " + std::to_string(i);
    items.push_back({kp.pub, msg, scheme.sign(kp, msg)});
  }
  using curve::MsmBackend;
  for (MsmBackend b : {MsmBackend::kStraus, MsmBackend::kPippenger, MsmBackend::kEndoSplit,
                       MsmBackend::kAuto}) {
    curve::MsmOptions opts;
    opts.backend = b;
    Rng r1(777), r2(777);  // same weights for the accept and reject runs
    EXPECT_TRUE(scheme.verify_batch(items, r1, opts)) << curve::msm_backend_name(b);
    auto tampered = items;
    tampered[5].msg += " (tampered)";
    EXPECT_FALSE(scheme.verify_batch(tampered, r2, opts)) << curve::msm_backend_name(b);
  }
}

TEST_F(SchnorrTest, SignatureSerializationRoundTrip) {
  auto kp = scheme.keygen(rng);
  auto sig = scheme.sign(kp, "serialize me");
  auto bytes = scheme.encode_signature(sig);
  auto back = scheme.decode_signature(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->s, sig.s);
  EXPECT_EQ(back->r.x, sig.r.x);
  EXPECT_EQ(back->r.y, sig.r.y);
  EXPECT_TRUE(scheme.verify(kp.pub, "serialize me", *back));
}

TEST_F(SchnorrTest, DecodeRejectsCorruptedSignature) {
  auto kp = scheme.keygen(rng);
  auto bytes = scheme.encode_signature(scheme.sign(kp, "m"));
  // Corrupt s into an out-of-range value (order is ~2^246, so setting the
  // top byte makes s >= N).
  auto bad_s = bytes;
  bad_s[63] = 0xff;
  EXPECT_FALSE(scheme.decode_signature(bad_s).has_value());
  // Corrupt R's y into (almost certainly) a y with no valid x, or a
  // different point; either decode fails or verification fails.
  auto bad_r = bytes;
  bad_r[0] ^= 0x01;
  auto decoded = scheme.decode_signature(bad_r);
  if (decoded) {
    EXPECT_FALSE(scheme.verify(kp.pub, "m", *decoded));
  }
}

TEST_F(SchnorrTest, PublicKeySerializationRoundTrip) {
  auto kp = scheme.keygen(rng);
  auto bytes = scheme.encode_public_key(kp.pub);
  auto back = scheme.decode_public_key(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->x, kp.pub.x);
  EXPECT_EQ(back->y, kp.pub.y);
  auto sig = scheme.sign(kp, "compressed-key verify");
  EXPECT_TRUE(scheme.verify(*back, "compressed-key verify", sig));
}

class EcdsaTest : public ::testing::Test {
 protected:
  EcdsaP256 scheme;
  Rng rng{302};
};

TEST_F(EcdsaTest, SignVerifyRoundTrip) {
  auto kp = scheme.keygen(rng);
  for (const char* msg : {"", "hello", "priority vehicle approaching"}) {
    auto sig = scheme.sign(kp, msg);
    EXPECT_TRUE(scheme.verify(kp.pub, msg, sig)) << msg;
  }
}

TEST_F(EcdsaTest, RejectsWrongMessage) {
  auto kp = scheme.keygen(rng);
  auto sig = scheme.sign(kp, "original");
  EXPECT_FALSE(scheme.verify(kp.pub, "tampered", sig));
}

TEST_F(EcdsaTest, RejectsWrongKey) {
  auto kp1 = scheme.keygen(rng);
  auto kp2 = scheme.keygen(rng);
  EXPECT_FALSE(scheme.verify(kp2.pub, "msg", scheme.sign(kp1, "msg")));
}

TEST_F(EcdsaTest, RejectsZeroComponents) {
  auto kp = scheme.keygen(rng);
  auto sig = scheme.sign(kp, "msg");
  EXPECT_FALSE(scheme.verify(kp.pub, "msg", {U256(), sig.s}));
  EXPECT_FALSE(scheme.verify(kp.pub, "msg", {sig.r, U256()}));
}

TEST_F(EcdsaTest, RejectsOutOfRangeComponents) {
  auto kp = scheme.keygen(rng);
  auto sig = scheme.sign(kp, "msg");
  EXPECT_FALSE(scheme.verify(kp.pub, "msg", {scheme.curve().group_order(), sig.s}));
}

TEST_F(EcdsaTest, ExplicitNonceReproducible) {
  auto kp = scheme.keygen(rng);
  U256 k(0x123456789abcdefull);
  auto s1 = scheme.sign_with_nonce(kp, "m", k);
  auto s2 = scheme.sign_with_nonce(kp, "m", k);
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
  EXPECT_TRUE(scheme.verify(kp.pub, "m", s1));
}

TEST_F(EcdsaTest, NonceReuseLeaksStructure) {
  // Classic failure mode: same nonce, different messages -> same r.
  auto kp = scheme.keygen(rng);
  U256 k(0xdeadbeefull);
  auto s1 = scheme.sign_with_nonce(kp, "m1", k);
  auto s2 = scheme.sign_with_nonce(kp, "m2", k);
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_NE(s1.s, s2.s);
}

TEST_F(EcdsaTest, CrossSchemeSignaturesDontVerify) {
  auto kp = scheme.keygen(rng);
  auto sig = scheme.sign(kp, "msg");
  // A signature over one message never verifies as another key's signature.
  auto kp2 = scheme.keygen(rng);
  EXPECT_FALSE(scheme.verify(kp2.pub, "msg", sig));
}

// --- ECDSA over FourQ (§II-A on the paper's own curve) ---------------------

class EcdsaFourQTest : public ::testing::Test {
 protected:
  EcdsaFourQ scheme;
  Rng rng{303};
};

TEST_F(EcdsaFourQTest, SignVerifyRoundTrip) {
  auto kp = scheme.keygen(rng);
  for (const char* msg : {"", "hello", "emergency brake warning, lane 3"}) {
    auto sig = scheme.sign(kp, msg);
    EXPECT_TRUE(scheme.verify(kp.pub, msg, sig)) << msg;
  }
}

TEST_F(EcdsaFourQTest, RejectsWrongMessageAndKey) {
  auto kp1 = scheme.keygen(rng);
  auto kp2 = scheme.keygen(rng);
  auto sig = scheme.sign(kp1, "original");
  EXPECT_FALSE(scheme.verify(kp1.pub, "tampered", sig));
  EXPECT_FALSE(scheme.verify(kp2.pub, "original", sig));
}

TEST_F(EcdsaFourQTest, RejectsZeroAndOutOfRange) {
  auto kp = scheme.keygen(rng);
  auto sig = scheme.sign(kp, "m");
  EXPECT_FALSE(scheme.verify(kp.pub, "m", {U256(), sig.s}));
  EXPECT_FALSE(scheme.verify(kp.pub, "m", {sig.r, U256()}));
  EXPECT_FALSE(scheme.verify(kp.pub, "m", {scheme.order(), sig.s}));
}

TEST_F(EcdsaFourQTest, SignaturesAreDeterministicPerKeyAndMessage) {
  auto kp = scheme.keygen(rng);
  auto s1 = scheme.sign(kp, "m");
  auto s2 = scheme.sign(kp, "m");
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
  EXPECT_NE(scheme.sign(kp, "m2").r, s1.r);
}

TEST_F(EcdsaFourQTest, ManyKeysManyMessages) {
  for (int i = 0; i < 4; ++i) {
    auto kp = scheme.keygen(rng);
    std::string msg = "message #" + std::to_string(i);
    EXPECT_TRUE(scheme.verify(kp.pub, msg, scheme.sign(kp, msg)));
  }
}

}  // namespace
}  // namespace fourq::dsa
