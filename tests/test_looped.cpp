// Tests for the blocked/looped controller: functional equivalence with the
// flat (globally scheduled) controller and with curve-level scalar
// multiplication, plus the ROM-vs-cycles trade-off the design embodies.
#include "asic/looped.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "curve/scalarmul.hpp"

namespace fourq::asic {
namespace {

using curve::Fp2;

trace::InputBindings bindings_for(const LoopedSm& sm, const curve::Affine& p) {
  trace::InputBindings b;
  b.emplace_back(sm.in_zero, Fp2());
  b.emplace_back(sm.in_one, Fp2::from_u64(1));
  b.emplace_back(sm.in_two_d, curve::curve_2d());
  b.emplace_back(sm.in_px, p.x);
  b.emplace_back(sm.in_py, p.y);
  for (size_t i = 0; i < sm.in_endo_consts.size(); ++i)
    b.emplace_back(sm.in_endo_consts[i], Fp2::from_u64(3 + i, 7 + i));
  return b;
}

class LoopedFunctional : public ::testing::Test {
 protected:
  static const LoopedSm& machine() {
    static LoopedSm sm = [] {
      LoopedSmOptions opt;
      opt.endo = trace::EndoVariant::kFunctional;
      return build_looped_sm(opt);
    }();
    return sm;
  }
};

TEST_F(LoopedFunctional, MatchesCurveScalarMul) {
  curve::Affine p = curve::deterministic_point(95);
  trace::InputBindings b = bindings_for(machine(), p);
  Rng rng(901);
  for (int i = 0; i < 3; ++i) {
    U256 k = rng.next_u256();
    curve::Decomposition dec = curve::decompose(k);
    curve::RecodedScalar rec = curve::recode(dec.a);
    SimResult res = simulate_looped(machine(), b, trace::EvalContext{&rec, dec.k_was_even});
    curve::Affine expect = curve::to_affine(curve::scalar_mul(k, p));
    EXPECT_EQ(res.outputs.at("x"), expect.x) << "k=" << k.to_hex();
    EXPECT_EQ(res.outputs.at("y"), expect.y);
  }
}

TEST_F(LoopedFunctional, EvenScalarCorrection) {
  curve::Affine p = curve::deterministic_point(96);
  trace::InputBindings b = bindings_for(machine(), p);
  U256 k = Rng(902).next_u256();
  k.set_bit(0, false);
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  SimResult res = simulate_looped(machine(), b, trace::EvalContext{&rec, true});
  curve::Affine expect = curve::to_affine(curve::scalar_mul(k, p));
  EXPECT_EQ(res.outputs.at("x"), expect.x);
  EXPECT_EQ(res.outputs.at("y"), expect.y);
}

TEST_F(LoopedFunctional, SmallScalars) {
  curve::Affine p = curve::deterministic_point(97);
  trace::InputBindings b = bindings_for(machine(), p);
  for (uint64_t k : {0ull, 1ull, 2ull, 7ull}) {
    curve::Decomposition dec = curve::decompose(U256(k));
    curve::RecodedScalar rec = curve::recode(dec.a);
    SimResult res = simulate_looped(machine(), b, trace::EvalContext{&rec, dec.k_was_even});
    if (k == 0) {
      // [0]P = O has no affine form; Z of the accumulator is zero only for
      // the identity... the identity IS affine (0, 1), so check that.
      EXPECT_TRUE(res.outputs.at("x").is_zero());
      EXPECT_EQ(res.outputs.at("y"), Fp2::from_u64(1));
      continue;
    }
    curve::Affine expect = curve::to_affine(curve::scalar_mul(U256(k), p));
    EXPECT_EQ(res.outputs.at("x"), expect.x) << k;
    EXPECT_EQ(res.outputs.at("y"), expect.y) << k;
  }
}

TEST(Looped, RomMuchSmallerCyclesLarger) {
  LoopedSmOptions lopt;  // paper-cost default
  LoopedSm looped = build_looped_sm(lopt);

  trace::SmTraceOptions topt;
  topt.endo = trace::EndoVariant::kPaperCost;
  sched::CompileResult flat = sched::compile_program(trace::build_sm_trace(topt).program, {});

  // The paper's point: global scheduling wins cycles; blocking wins ROM.
  EXPECT_LT(looped.rom_words(), flat.sm.cycles() / 3);
  EXPECT_GT(looped.total_cycles(), flat.sm.cycles());
}

TEST(Looped, PaperCostVariantRunsDeterministically) {
  LoopedSm sm = build_looped_sm({});
  curve::Affine p = curve::deterministic_point(98);
  trace::InputBindings b = bindings_for(sm, p);
  U256 k = Rng(903).next_u256();
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  trace::EvalContext ctx{&rec, dec.k_was_even};
  SimResult r1 = simulate_looped(sm, b, ctx);
  SimResult r2 = simulate_looped(sm, b, ctx);
  EXPECT_EQ(r1.outputs.at("x"), r2.outputs.at("x"));
  EXPECT_EQ(r1.stats.cycles, r2.stats.cycles);
  EXPECT_EQ(r1.stats.cycles, sm.total_cycles());
}

class LoopedUnroll : public ::testing::TestWithParam<int> {};

TEST_P(LoopedUnroll, FunctionalCorrectnessWithUnrolledBody) {
  LoopedSmOptions opt;
  opt.endo = trace::EndoVariant::kFunctional;
  opt.body_unroll = GetParam();
  LoopedSm sm = build_looped_sm(opt);
  EXPECT_EQ(sm.iterations * sm.body_unroll, curve::kDigits);

  curve::Affine p = curve::deterministic_point(110 + static_cast<uint64_t>(GetParam()));
  trace::InputBindings b = bindings_for(sm, p);
  Rng rng(905);
  for (int i = 0; i < 2; ++i) {
    U256 k = rng.next_u256();
    if (i == 1) k.set_bit(0, false);
    curve::Decomposition dec = curve::decompose(k);
    curve::RecodedScalar rec = curve::recode(dec.a);
    SimResult res = simulate_looped(sm, b, trace::EvalContext{&rec, dec.k_was_even});
    curve::Affine expect = curve::to_affine(curve::scalar_mul(k, p));
    EXPECT_EQ(res.outputs.at("x"), expect.x) << "unroll=" << GetParam();
    EXPECT_EQ(res.outputs.at("y"), expect.y);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, LoopedUnroll, ::testing::Values(1, 5, 13));

TEST(Looped, UnrollingReducesTotalCycles) {
  // The solver overlaps the unrolled iterations: fewer cycles per digit.
  int prev = 1 << 30;
  for (int u : {1, 5, 13}) {
    LoopedSmOptions opt;
    opt.body_unroll = u;
    LoopedSm sm = build_looped_sm(opt);
    EXPECT_LT(sm.total_cycles(), prev) << "unroll=" << u;
    prev = sm.total_cycles();
  }
}

TEST(Looped, UnrollRejectsNonDivisors) {
  LoopedSmOptions opt;
  opt.body_unroll = 4;
  EXPECT_THROW(build_looped_sm(opt), std::logic_error);
}

// Machine-config matrix for the looped controller: correctness must hold
// for every datapath shape, like the flat controller's sweep.
using LoopedCfg = std::tuple<int, bool, int>;  // mul_latency, forwarding, unroll

class LoopedConfigMatrix : public ::testing::TestWithParam<LoopedCfg> {};

TEST_P(LoopedConfigMatrix, FunctionalAcrossConfigs) {
  auto [lat, fwd, unroll] = GetParam();
  LoopedSmOptions opt;
  opt.endo = trace::EndoVariant::kFunctional;
  opt.cfg.mul_latency = lat;
  opt.cfg.forwarding = fwd;
  opt.cfg.rf_size = 128;  // no-forwarding configs keep more temporaries live
  opt.body_unroll = unroll;
  LoopedSm sm = build_looped_sm(opt);

  curve::Affine p = curve::deterministic_point(120);
  trace::InputBindings b = bindings_for(sm, p);
  U256 k = Rng(906).next_u256();
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  SimResult res = simulate_looped(sm, b, trace::EvalContext{&rec, dec.k_was_even});
  curve::Affine expect = curve::to_affine(curve::scalar_mul(k, p));
  EXPECT_EQ(res.outputs.at("x"), expect.x);
  EXPECT_EQ(res.outputs.at("y"), expect.y);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LoopedConfigMatrix,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Bool(),
                                            ::testing::Values(1, 5)),
                         [](const ::testing::TestParamInfo<LoopedCfg>& info) {
                           return "lat" + std::to_string(std::get<0>(info.param)) +
                                  (std::get<1>(info.param) ? "_fwd" : "_nofwd") + "_u" +
                                  std::to_string(std::get<2>(info.param));
                         });

TEST(Looped, FixedCycleCountAcrossScalars) {
  LoopedSm sm = build_looped_sm({});
  curve::Affine p = curve::deterministic_point(99);
  trace::InputBindings b = bindings_for(sm, p);
  Rng rng(904);
  int cycles = -1;
  for (int i = 0; i < 3; ++i) {
    U256 k = rng.next_u256();
    curve::Decomposition dec = curve::decompose(k);
    curve::RecodedScalar rec = curve::recode(dec.a);
    SimResult res = simulate_looped(sm, b, trace::EvalContext{&rec, dec.k_was_even});
    if (cycles < 0) cycles = res.stats.cycles;
    EXPECT_EQ(res.stats.cycles, cycles);
  }
}

}  // namespace
}  // namespace fourq::asic
