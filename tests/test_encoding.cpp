// Tests for point encoding and compression.
#include "curve/encoding.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "curve/scalarmul.hpp"

namespace fourq::curve {
namespace {

Affine random_point(Rng& rng) {
  Affine base = deterministic_point(55);
  return to_affine(scalar_mul(rng.next_u256(), base));
}

TEST(Encoding, UncompressedRoundTrip) {
  Rng rng(611);
  for (int i = 0; i < 20; ++i) {
    Affine p = random_point(rng);
    auto decoded = decode(encode(p));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->x, p.x);
    EXPECT_EQ(decoded->y, p.y);
  }
}

TEST(Encoding, CompressedRoundTrip) {
  Rng rng(612);
  for (int i = 0; i < 20; ++i) {
    Affine p = random_point(rng);
    auto decoded = decompress(compress(p));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->x, p.x) << "sign bit failed to disambiguate";
    EXPECT_EQ(decoded->y, p.y);
  }
}

TEST(Encoding, CompressionDistinguishesNegation) {
  Rng rng(613);
  Affine p = random_point(rng);
  Affine np = neg(p);
  CompressedPoint cp = compress(p), cnp = compress(np);
  // Same y, different sign bit.
  EXPECT_NE(cp, cnp);
  auto dp = decompress(cp), dnp = decompress(cnp);
  ASSERT_TRUE(dp && dnp);
  EXPECT_EQ(dp->x, p.x);
  EXPECT_EQ(dnp->x, np.x);
}

TEST(Encoding, SpecialPoints) {
  // Identity (0, 1): x = 0 forces a clear sign bit.
  Affine id{Fp2(), Fp2::from_u64(1)};
  auto rid = decompress(compress(id));
  ASSERT_TRUE(rid.has_value());
  EXPECT_TRUE(rid->x.is_zero());
  // Order-2 point (0, -1).
  Affine t{Fp2(), -Fp2::from_u64(1)};
  auto rt = decompress(compress(t));
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(rt->y, t.y);
}

TEST(Encoding, RejectsOffCurveUncompressed) {
  Affine p = deterministic_point(56);
  UncompressedPoint bytes = encode(p);
  bytes[0] ^= 1;  // perturb x
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Encoding, RejectsNonCanonicalField) {
  // y.re = p (non-canonical encoding of zero).
  CompressedPoint bytes{};
  for (int i = 0; i < 15; ++i) bytes[static_cast<size_t>(i)] = 0xff;
  bytes[15] = 0x7f;
  EXPECT_FALSE(decompress(bytes).has_value());
}

TEST(Encoding, RejectsYWithNoX) {
  // Scan for a y whose x^2 is a non-residue; must be rejected.
  bool found = false;
  for (uint64_t ytry = 2; ytry < 60 && !found; ++ytry) {
    Fp2 y = Fp2::from_u64(ytry, 1);
    CompressedPoint bytes{};
    // Hand-encode y.
    uint64_t w[4] = {y.re().lo(), y.re().hi(), y.im().lo(), y.im().hi()};
    for (int i = 0; i < 4; ++i)
      for (int b = 0; b < 8; ++b)
        bytes[static_cast<size_t>(8 * i + b)] = static_cast<uint8_t>(w[i] >> (8 * b));
    if (!decompress(bytes).has_value()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Encoding, SignConventionConsistent) {
  Rng rng(614);
  for (int i = 0; i < 20; ++i) {
    Affine p = random_point(rng);
    if (p.x.is_zero()) continue;
    EXPECT_NE(x_sign(p.x), x_sign(-p.x));
  }
}

TEST(Encoding, FuzzRoundTripManyPoints) {
  Rng rng(615);
  Affine base = deterministic_point(57);
  for (int i = 0; i < 150; ++i) {
    Affine p = to_affine(scalar_mul(rng.next_u256(), base));
    auto c = decompress(compress(p));
    ASSERT_TRUE(c.has_value()) << i;
    EXPECT_EQ(c->x, p.x);
    EXPECT_EQ(c->y, p.y);
    auto u = decode(encode(p));
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(u->x, p.x);
    EXPECT_EQ(u->y, p.y);
  }
}

TEST(Encoding, CompressedBytesAreCanonical) {
  // compress(decompress(bytes)) == bytes for every valid encoding.
  Rng rng(616);
  Affine base = deterministic_point(58);
  for (int i = 0; i < 50; ++i) {
    Affine p = to_affine(scalar_mul(rng.next_u256(), base));
    CompressedPoint bytes = compress(p);
    auto d = decompress(bytes);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(compress(*d), bytes);
  }
}

TEST(Encoding, IdentityUncompressedRoundTrip) {
  Affine id{Fp2(), Fp2::from_u64(1)};
  auto r = decode(encode(id));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->x.is_zero());
}

}  // namespace
}  // namespace fourq::curve
