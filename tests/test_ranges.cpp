// Tests for the abstract-interpretation range verifier: known-answer
// tightest bounds on the Karatsuba datapath expansion, a seeded-defect
// matrix (every range rule fires on its counterexample), certificate
// tamper detection, ROM-side agreement, randomized soundness of the proven
// bounds against the concrete interpreter, and a differential check of the
// micro-op semantics against field::Fp2.
#include "analysis/range/range.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "common/rng.hpp"
#include "field/fp2.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::analysis::range {
namespace {

bool has_rule(const LintReport& r, Rule rule) {
  for (const Finding& f : r.findings)
    if (f.rule == rule) return true;
  return false;
}

int count_rule(const LintReport& r, Rule rule) {
  int n = 0;
  for (const Finding& f : r.findings) n += f.rule == rule;
  return n;
}

// Finds the wide node expanding trace op `origin` with stage role `role`.
int node_with_role(const WideProgram& wp, int origin, const char* role) {
  for (size_t n = 0; n < wp.ops.size(); ++n)
    if (wp.ops[n].origin == origin && std::string(wp.ops[n].role) == role)
      return static_cast<int>(n);
  ADD_FAILURE() << "no node with role " << role << " for op " << origin;
  return -1;
}

// in0, in1, z = in0 * in1 — the whole Algorithm 2 datapath once.
trace::Program mul_program() {
  trace::Program p;
  int a = p.add_op({trace::OpKind::kInput, {}, {}, "a"});
  int b = p.add_op({trace::OpKind::kInput, {}, {}, "b"});
  int z = p.add_op({trace::OpKind::kMul, trace::Operand::of(a),
                    trace::Operand::of(b), "z"});
  p.outputs.emplace_back(z, "z");
  return p;
}

TEST(RangeDomain, BoundArithmeticIsExact) {
  Bound five = Bound::of_u64(5);
  Bound seven = Bound::of_u64(7);
  EXPECT_EQ(badd(five, seven).max, U512(U256(12)));
  EXPECT_EQ(bmul(five, seven).max, U512(U256(35)));
  EXPECT_EQ(bjoin(five, seven).max, U512(U256(7)));
  EXPECT_EQ(five.bits(), 3);
  EXPECT_TRUE(five.fits_bits(3));
  EXPECT_FALSE(five.fits_bits(2));

  Bound top = Bound::unbounded();
  EXPECT_TRUE(badd(top, five).top);
  EXPECT_TRUE(bmul(five, top).top);
  EXPECT_TRUE(bjoin(top, five).top);
  EXPECT_EQ(top.bits(), 513);

  EXPECT_EQ(Bound::canonical().bits(), 127);
  EXPECT_EQ(canonical_max().top_bit(), 126);
  EXPECT_EQ(pshift127().top_bit(), 253);
  EXPECT_EQ(bits_max(128).top_bit(), 127);
}

// The fixed point of the mul expansion must be *exactly* the hand-derived
// stage bounds of paper Algorithm 2 — not merely sound, but tight.
TEST(RangeKnownAnswer, MulExpansionTightestBounds) {
  trace::Program p = mul_program();
  LintReport rep;
  ProgramRanges pr = analyze_program(p, {}, rep);
  ASSERT_TRUE(pr.result.proven) << lint_text({{"mul", rep}});
  EXPECT_TRUE(rep.ranges_proven);
  EXPECT_EQ(rep.range_reduce_sites, 2);
  EXPECT_EQ(pr.result.stats.redundant_reduces, 0);

  const WideProgram& wp = pr.expand.wide;
  auto bound_at = [&](const char* role) {
    return pr.result.bounds[static_cast<size_t>(node_with_role(wp, 2, role))];
  };

  const U256 cmax = canonical_max().lo256();  // p - 1
  const U512 prod = mul_wide(cmax, cmax);     // (p-1)^2
  U512 lazy2;                                 // 2(p-1)
  add(U512(cmax), U512(cmax), lazy2);
  U512 acc2;                                  // 2(p-1)^2
  add(prod, prod, acc2);
  const U512 cross = mul_wide(lazy2.lo256(), lazy2.lo256());  // 4(p-1)^2
  U512 t7max;                                 // p*2^127 - 1
  sub(pshift127(), U512(U256(1)), t7max);

  EXPECT_EQ(bound_at("t0").max, prod);
  EXPECT_EQ(bound_at("t1").max, prod);
  EXPECT_EQ(bound_at("t2").max, lazy2);
  EXPECT_EQ(bound_at("t3").max, lazy2);
  EXPECT_EQ(bound_at("t5").max, acc2);
  EXPECT_EQ(bound_at("t6").max, cross);
  // t7 = max((p-1)^2, p*2^127 - 1): the borrow branch dominates.
  EXPECT_EQ(bound_at("t7").max, t7max);
  // t8 <= t6 by the Karatsuba identity.
  EXPECT_EQ(bound_at("t8").max, cross);
  EXPECT_EQ(bound_at("z0").max, canonical_max());
  EXPECT_EQ(bound_at("z1").max, canonical_max());

  // Widest live value is t6/t8 at exactly the 256-bit accumulator width.
  EXPECT_EQ(pr.result.max_bits, 256);
  EXPECT_EQ(rep.range_max_bits, 256);
}

TEST(RangeKnownAnswer, AddSubConjStayCanonical) {
  trace::Program p;
  int a = p.add_op({trace::OpKind::kInput, {}, {}, "a"});
  int b = p.add_op({trace::OpKind::kInput, {}, {}, "b"});
  int s = p.add_op({trace::OpKind::kAdd, trace::Operand::of(a),
                    trace::Operand::of(b), "s"});
  int d = p.add_op({trace::OpKind::kSub, trace::Operand::of(s),
                    trace::Operand::of(b), "d"});
  int c = p.add_op({trace::OpKind::kConj, trace::Operand::of(d), {}, "c"});
  p.outputs.emplace_back(c, "c");

  LintReport rep;
  ProgramRanges pr = analyze_program(p, {}, rep);
  ASSERT_TRUE(pr.result.proven) << lint_text({{"addsub", rep}});
  // Both components of every op result are canonical; the widest live value
  // is the 128-bit lazy sum feeding the adder's fold.
  EXPECT_EQ(pr.result.max_bits, 128);
  for (int op : {s, d, c}) {
    auto [re, im] = pr.expand.op_nodes[static_cast<size_t>(op)];
    EXPECT_EQ(pr.result.bounds[static_cast<size_t>(re)].max, canonical_max());
    EXPECT_EQ(pr.result.bounds[static_cast<size_t>(im)].max, canonical_max());
  }
}

// ---- Seeded-defect matrix -------------------------------------------------

// Dropping the reduction before a multiplier: seed an input with a lazy
// 128-bit bound instead of canonical. The 127-bit multiplier-operand
// contract at t0/t1 must fire reduce-missing, and the analysis must clamp
// (not cascade) so the defect surfaces at the multiplier sites only.
TEST(RangeDefects, DroppedReductionFiresReduceMissing) {
  trace::Program p = mul_program();
  ExpandResult ex = expand_program(p);
  RangeOptions opt;
  opt.input_bounds.emplace_back(ex.op_nodes[0].first, Bound::exact(bits_max(128)));
  LintReport rep;
  RangeResult res = analyze_wide(ex.wide, opt, {}, rep);
  EXPECT_FALSE(res.proven);
  EXPECT_FALSE(rep.ranges_proven);
  EXPECT_TRUE(has_rule(rep, Rule::kReduceMissing)) << lint_text({{"seed", rep}});
  // a feeds t0 and the t2 lazy sum; only the multiplier contract fires.
  EXPECT_EQ(count_rule(rep, Rule::kReduceMissing), 1);
  EXPECT_FALSE(has_rule(rep, Rule::kRangeUnbounded));
}

// A pure width overflow (no canonicality contract involved): two 128-bit
// values into a 128-bit lazy-sum register.
TEST(RangeDefects, RegisterOverflowFiresOverflowPossible) {
  WideProgram wp;
  int a = wp.add({WideKind::kInput, -1, -1, 0, InLimit::kNone, -1, -1, "a"});
  int b = wp.add({WideKind::kInput, -1, -1, 0, InLimit::kNone, -1, -1, "b"});
  wp.add({WideKind::kLazyAdd, a, b, 128, InLimit::kNone, -1, -1, "s"});
  RangeOptions opt;
  opt.input_bounds.emplace_back(a, Bound::exact(bits_max(128)));
  opt.input_bounds.emplace_back(b, Bound::exact(bits_max(128)));
  LintReport rep;
  RangeResult res = analyze_wide(wp, opt, {}, rep);
  EXPECT_FALSE(res.proven);
  EXPECT_EQ(count_rule(rep, Rule::kOverflowPossible), 1);
  EXPECT_FALSE(has_rule(rep, Rule::kReduceMissing));
}

// A redundant reduction — folding a value that is already canonical — is
// advisory: the program still proves, but the fold is flagged.
TEST(RangeDefects, RedundantReductionIsAdvisory) {
  WideProgram wp;
  int a = wp.add({WideKind::kInput, -1, -1, 0, InLimit::kNone, -1, -1, "a"});
  wp.add({WideKind::kFold, a, -1, 127, InLimit::kBits256, -1, -1, "z"});
  LintReport rep;
  RangeResult res = analyze_wide(wp, {}, {}, rep);
  EXPECT_TRUE(res.proven);
  EXPECT_EQ(res.stats.reduce_sites, 1);
  EXPECT_EQ(res.stats.redundant_reduces, 1);
  EXPECT_TRUE(has_rule(rep, Rule::kReduceRedundant));
  EXPECT_EQ(rep.errors(), 0);
  EXPECT_EQ(rep.warnings(), 1);
}

// A loop-carried value that grows every iteration (a lazy sum fed back
// without a reduce) has no finite fixed point: the carried bound must widen
// to Top and the analysis must say so rather than loop forever or
// under-approximate.
TEST(RangeDefects, UnreducedCarriedValueWidens) {
  WideProgram wp;
  int in = wp.add({WideKind::kInput, -1, -1, 0, InLimit::kNone, -1, -1, "carry"});
  int s = wp.add({WideKind::kLazyAdd, in, in, 0, InLimit::kNone, -1, -1, "grow"});
  LintReport rep;
  RangeResult res = analyze_wide(wp, {}, {{in, s}}, rep);
  EXPECT_FALSE(res.proven);
  EXPECT_EQ(res.stats.widened, 1);
  EXPECT_TRUE(res.bounds[static_cast<size_t>(in)].top);
  EXPECT_TRUE(has_rule(rep, Rule::kBoundWideningLoop)) << lint_text({{"widen", rep}});
  EXPECT_EQ(rep.range_widened, 1);

  // The fixed datapath closes the loop with a fold: same shape plus a
  // reduce converges to canonical with no widening.
  WideProgram ok;
  int in2 = ok.add({WideKind::kInput, -1, -1, 0, InLimit::kNone, -1, -1, "carry"});
  int s2 = ok.add({WideKind::kLazyAdd, in2, in2, 128, InLimit::kNone, -1, -1, "sum"});
  int z2 = ok.add({WideKind::kFold, s2, -1, 127, InLimit::kBits128, -1, -1, "z"});
  LintReport rep2;
  RangeResult res2 = analyze_wide(ok, {}, {{in2, z2}}, rep2);
  EXPECT_TRUE(res2.proven) << lint_text({{"fold", rep2}});
  EXPECT_EQ(res2.stats.widened, 0);
  EXPECT_EQ(res2.bounds[static_cast<size_t>(in2)].max, canonical_max());
}

// Select candidates with unequal bounds: the chosen magnitude depends on
// the secret digit. Advisory (the join still takes the max), but flagged.
TEST(RangeDefects, SelectBoundDivergenceIsFlagged) {
  WideProgram wp;
  int a = wp.add({WideKind::kInput, -1, -1, 0, InLimit::kNone, -1, -1, "a"});
  int b = wp.add({WideKind::kInput, -1, -1, 0, InLimit::kNone, -1, -1, "b"});
  wp.joins.push_back({a, b});
  int j = wp.add({WideKind::kJoin, -1, -1, 0, InLimit::kNone, -1, 0, "sel"});
  RangeOptions opt;
  opt.input_bounds.emplace_back(b, Bound::of_u64(5));
  LintReport rep;
  RangeResult res = analyze_wide(wp, opt, {}, rep);
  EXPECT_TRUE(res.proven);
  EXPECT_TRUE(has_rule(rep, Rule::kSelectBoundDivergence));
  // The join itself is sound: it holds the larger candidate bound.
  EXPECT_EQ(res.bounds[static_cast<size_t>(j)].max, canonical_max());
}

// ---- Certificate ----------------------------------------------------------

TEST(RangeCertificate, CleanCertificateReplays) {
  trace::Program p = mul_program();
  LintReport rep;
  ProgramRanges pr = analyze_program(p, {}, rep);
  ASSERT_TRUE(pr.result.proven);

  LintReport replay;
  EXPECT_TRUE(check_certificate(pr, {}, replay));
  EXPECT_EQ(replay.errors(), 0);

  std::string json = ranges_json({{"mul", &pr}});
  EXPECT_NE(json.find("\"fourq.ranges.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"proven\":true"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"mul-core\""), std::string::npos);
}

TEST(RangeCertificate, TamperedBoundIsRejected) {
  trace::Program p = mul_program();
  LintReport rep;
  ProgramRanges pr = analyze_program(p, {}, rep);
  ASSERT_TRUE(pr.result.proven);

  // Claim a tighter bound than the t6 transfer justifies.
  int t6 = node_with_role(pr.expand.wide, 2, "t6");
  pr.result.bounds[static_cast<size_t>(t6)] = Bound::of_u64(1);
  LintReport replay;
  EXPECT_FALSE(check_certificate(pr, {}, replay));
  EXPECT_TRUE(has_rule(replay, Rule::kRangeCertInvalid)) << lint_text({{"tamper", replay}});

  // Loosening is sound and must still replay — but only if every downstream
  // claim is loosened consistently (t8 inherits t6's bound via the monus).
  pr.result.bounds[static_cast<size_t>(t6)] = Bound::exact(bits_max(256));
  int t8 = node_with_role(pr.expand.wide, 2, "t8");
  pr.result.bounds[static_cast<size_t>(t8)] = Bound::exact(bits_max(256));
  LintReport loose;
  EXPECT_TRUE(check_certificate(pr, {}, loose));
}

TEST(RangeCertificate, BrokenFixedPointIsRejected) {
  // in(op0) -> add(op0, op0) = op1, with op1 carried back into op0.
  trace::Program p;
  int a = p.add_op({trace::OpKind::kInput, {}, {}, "a"});
  int s = p.add_op({trace::OpKind::kAdd, trace::Operand::of(a),
                    trace::Operand::of(a), "s"});
  p.outputs.emplace_back(s, "s");
  RangeOptions opt;
  opt.carried.emplace_back(a, s);

  LintReport rep;
  ProgramRanges pr = analyze_program(p, opt, rep);
  ASSERT_TRUE(pr.result.proven);
  LintReport replay;
  EXPECT_TRUE(check_certificate(pr, opt, replay));

  // Tighten the carried input below its loop source: no longer a fixed point.
  pr.result.bounds[static_cast<size_t>(pr.expand.op_nodes[0].first)] = Bound::of_u64(1);
  LintReport broken;
  EXPECT_FALSE(check_certificate(pr, opt, broken));
  EXPECT_TRUE(has_rule(broken, Rule::kRangeCertInvalid));

  // A truncated bounds vector is rejected outright.
  pr.result.bounds.pop_back();
  LintReport truncated;
  EXPECT_FALSE(check_certificate(pr, {}, truncated));
}

// ---- ROM-side pass --------------------------------------------------------

TEST(RangeRom, LoopBodyAgreesWithDagProof) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileOptions copt;
  copt.solver = sched::Solver::kSequential;
  sched::CompileResult res = sched::compile_program(body.program, copt);

  LintReport dag_rep;
  ProgramRanges dag = analyze_program(body.program, {}, dag_rep);
  ASSERT_TRUE(dag.result.proven) << lint_text({{"dag", dag_rep}});

  LintReport rep;
  analyze_rom(res.sm, body.program, dag, rep);
  EXPECT_TRUE(rep.ranges_checked);
  EXPECT_TRUE(rep.ranges_proven) << lint_text({{"rom", rep}});
  EXPECT_EQ(rep.errors(), 0);
  EXPECT_GT(rep.range_nodes, 0);
  EXPECT_GT(rep.range_reduce_sites, 0);
}

TEST(RangeRom, TamperedDagBoundFiresMismatch) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileOptions copt;
  copt.solver = sched::Solver::kSequential;
  sched::CompileResult res = sched::compile_program(body.program, copt);

  LintReport dag_rep;
  ProgramRanges dag = analyze_program(body.program, {}, dag_rep);
  ASSERT_TRUE(dag.result.proven);

  // Understate the DAG-side bound of the first multiplication's real
  // component: the ROM recomputes the honest (larger) bound and the
  // dominance check must catch the disagreement.
  for (size_t i = 0; i < body.program.ops.size(); ++i) {
    if (body.program.ops[i].kind != trace::OpKind::kMul) continue;
    dag.result.bounds[static_cast<size_t>(dag.expand.op_nodes[i].first)] =
        Bound::of_u64(1);
    break;
  }
  LintReport rep;
  analyze_rom(res.sm, body.program, dag, rep);
  EXPECT_FALSE(rep.ranges_proven);
  EXPECT_TRUE(has_rule(rep, Rule::kDagRomBoundMismatch)) << lint_text({{"rom", rep}});
}

// ---- Concrete interpreter: soundness + differential vs field::Fp2 ---------

// a*b, a+b, (a*b)-(a+b), conj of that — every datapath shape, chained.
trace::Program mixed_program() {
  trace::Program p;
  int a = p.add_op({trace::OpKind::kInput, {}, {}, "a"});
  int b = p.add_op({trace::OpKind::kInput, {}, {}, "b"});
  int m = p.add_op({trace::OpKind::kMul, trace::Operand::of(a),
                    trace::Operand::of(b), "m"});
  int s = p.add_op({trace::OpKind::kAdd, trace::Operand::of(a),
                    trace::Operand::of(b), "s"});
  int d = p.add_op({trace::OpKind::kSub, trace::Operand::of(m),
                    trace::Operand::of(s), "d"});
  int c = p.add_op({trace::OpKind::kConj, trace::Operand::of(d), {}, "c"});
  p.outputs.emplace_back(c, "c");
  return p;
}

U512 wide_of(const field::Fp& v) { return U512(v.to_u256()); }

U256 canon(const U512& v) {
  return mod(v, U256(~0ull, 0x7fffffffffffffffull, 0, 0));
}

TEST(RangeEval, RandomSoundnessAndFp2Differential) {
  trace::Program p = mixed_program();
  LintReport rep;
  ProgramRanges pr = analyze_program(p, {}, rep);
  ASSERT_TRUE(pr.result.proven);
  const WideProgram& wp = pr.expand.wide;

  Rng rng(42);
  auto random_fp = [&] {
    uint64_t lo = rng.next_u64();
    uint64_t hi = rng.next_u64() & 0x7fffffffffffffffull;
    if (hi == 0x7fffffffffffffffull && lo == ~0ull) lo = 0;  // keep < p
    return field::Fp::from_words(lo, hi);
  };

  for (int trial = 0; trial < 10000; ++trial) {
    field::Fp2 a(random_fp(), random_fp());
    field::Fp2 b(random_fp(), random_fp());
    std::vector<std::pair<int, U512>> inputs = {
        {pr.expand.op_nodes[0].first, wide_of(a.re())},
        {pr.expand.op_nodes[0].second, wide_of(a.im())},
        {pr.expand.op_nodes[1].first, wide_of(b.re())},
        {pr.expand.op_nodes[1].second, wide_of(b.im())},
    };
    std::vector<U512> v;
    // Any invariant break (negative Karatsuba middle term, failed p<<127
    // correction, stage-register overflow) throws; a proven program must
    // execute every trial cleanly.
    ASSERT_NO_THROW(v = eval_wide(wp, inputs, {})) << "trial " << trial;

    // Soundness: every executed value respects its proven bound.
    for (size_t n = 0; n < v.size(); ++n) {
      const Bound& bd = pr.result.bounds[n];
      ASSERT_FALSE(bd.top);
      ASSERT_TRUE(bd.max >= v[n]) << "trial " << trial << " node " << n;
    }

    // Differential: the micro-op semantics agree with field::Fp2.
    field::Fp2 want = ((a * b) - (a + b)).conj();
    auto [re, im] = pr.expand.op_nodes[static_cast<size_t>(p.outputs[0].first)];
    EXPECT_EQ(canon(v[static_cast<size_t>(re)]), canon(wide_of(want.re())));
    EXPECT_EQ(canon(v[static_cast<size_t>(im)]), canon(wide_of(want.im())));
  }
}

TEST(RangeEval, SelectPicksCandidate) {
  trace::Program p;
  int a = p.add_op({trace::OpKind::kInput, {}, {}, "a"});
  int b = p.add_op({trace::OpKind::kInput, {}, {}, "b"});
  trace::SelectTable t;
  t.candidates = {{a, b}};
  p.tables.push_back(t);
  trace::Op sel_op;
  sel_op.kind = trace::OpKind::kSelect;
  sel_op.a = trace::Operand{trace::SelKind::kDigitTable, -1, 0, 0};
  int sel = p.add_op(sel_op);
  int z = p.add_op({trace::OpKind::kAdd, trace::Operand::of(sel),
                    trace::Operand::of(a), "z"});
  p.outputs.emplace_back(z, "z");

  LintReport rep;
  ProgramRanges pr = analyze_program(p, {}, rep);
  ASSERT_TRUE(pr.result.proven);
  ASSERT_EQ(pr.expand.wide.joins.size(), 2u);  // sel.re and sel.im

  field::Fp2 av = field::Fp2::from_u64(3, 4), bv = field::Fp2::from_u64(5, 6);
  std::vector<std::pair<int, U512>> inputs = {
      {pr.expand.op_nodes[0].first, wide_of(av.re())},
      {pr.expand.op_nodes[0].second, wide_of(av.im())},
      {pr.expand.op_nodes[1].first, wide_of(bv.re())},
      {pr.expand.op_nodes[1].second, wide_of(bv.im())},
  };
  auto [zre, zim] = pr.expand.op_nodes[static_cast<size_t>(z)];
  for (int c = 0; c < 2; ++c) {
    std::vector<U512> v = eval_wide(pr.expand.wide, inputs, {c, c});
    field::Fp2 want = (c == 0 ? av : bv) + av;
    EXPECT_EQ(canon(v[static_cast<size_t>(zre)]), canon(wide_of(want.re())));
    EXPECT_EQ(canon(v[static_cast<size_t>(zim)]), canon(wide_of(want.im())));
  }
}

// eval_wide enforces the stage invariants it documents: feeding an
// unreduced operand into the 127-bit multiplier contract of a *defective*
// expansion trips the register-width check.
TEST(RangeEval, InvariantViolationThrows) {
  WideProgram wp;
  int a = wp.add({WideKind::kInput, -1, -1, 0, InLimit::kNone, -1, -1, "a"});
  wp.add({WideKind::kLazyAdd, a, a, 127, InLimit::kNone, -1, -1, "s"});
  U512 big = shl(U512(U256(1)), 126);
  EXPECT_THROW(eval_wide(wp, {{a, big}}, {}), std::logic_error);
}

// ---- Diagnostic determinism -----------------------------------------------

// The finding list is canonically ordered (rule, node, cycle, reg, message)
// and the JSON document is byte-stable across identical runs — required for
// fleet-lint artifact diffing in CI.
TEST(RangeReport, FindingsSortedAndJsonDeterministic) {
  trace::Program p = mul_program();
  ExpandResult ex = expand_program(p);
  RangeOptions opt;
  // Two defects at once: both multiplier operands unreduced.
  opt.input_bounds.emplace_back(ex.op_nodes[0].first, Bound::exact(bits_max(128)));
  opt.input_bounds.emplace_back(ex.op_nodes[1].second, Bound::exact(bits_max(128)));

  auto run = [&] {
    LintReport rep;
    analyze_wide(ex.wide, opt, {}, rep);
    return rep;
  };
  LintReport r1 = run(), r2 = run();
  ASSERT_GE(r1.findings.size(), 2u);
  auto key = [](const Finding& f) {
    return std::tie(f.rule, f.node, f.cycle, f.reg, f.message);
  };
  EXPECT_TRUE(std::is_sorted(r1.findings.begin(), r1.findings.end(),
                             [&](const Finding& x, const Finding& y) {
                               return key(x) < key(y);
                             }));
  EXPECT_EQ(lint_json({{"seed", r1}}), lint_json({{"seed", r2}}));
}

}  // namespace
}  // namespace fourq::analysis::range
