// Schedule-explainability tests: critical-path analysis and makespan lower
// bounds on a hand-built DAG with known answers, and the stall-attribution
// conservation law (classes sum exactly to SimStats::stall_cycles) across
// every scheduler backend, on the Table I loop body and on randomly
// generated programs.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "asic/explain.hpp"
#include "asic/simulator.hpp"
#include "curve/point.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "sched/compile.hpp"
#include "sched/critical_path.hpp"
#include "trace/sm_trace.hpp"

namespace {

using namespace fourq;

// a, b inputs; m1 = a*b; s1 = m1+a; m2 = s1*b; s2 = a+b (off-path).
// Default machine: mul latency 3, add/sub latency 1, II 1, 4R/2W ports.
trace::Program tiny_program() {
  trace::Program p;
  trace::Op in;
  in.kind = trace::OpKind::kInput;
  int a = p.add_op(in);
  int b = p.add_op(in);
  trace::Op m1;
  m1.kind = trace::OpKind::kMul;
  m1.a = trace::Operand::of(a);
  m1.b = trace::Operand::of(b);
  int m1_id = p.add_op(m1);
  trace::Op s1;
  s1.kind = trace::OpKind::kAdd;
  s1.a = trace::Operand::of(m1_id);
  s1.b = trace::Operand::of(a);
  int s1_id = p.add_op(s1);
  trace::Op m2;
  m2.kind = trace::OpKind::kMul;
  m2.a = trace::Operand::of(s1_id);
  m2.b = trace::Operand::of(b);
  int m2_id = p.add_op(m2);
  trace::Op s2;
  s2.kind = trace::OpKind::kAdd;
  s2.a = trace::Operand::of(a);
  s2.b = trace::Operand::of(b);
  int s2_id = p.add_op(s2);
  p.outputs.emplace_back(m2_id, "m2");
  p.outputs.emplace_back(s2_id, "s2");
  return p;
}

TEST(CriticalPath, HandBuiltDagKnownAnswers) {
  trace::Program p = tiny_program();
  sched::MachineConfig cfg;
  sched::Problem pr = sched::build_problem(p, cfg);
  ASSERT_EQ(pr.nodes.size(), 4u);  // m1, s1, m2, s2 in program order

  sched::CriticalPathInfo info = sched::analyze_critical_path(pr);

  // ASAP under the latency-only relaxation: m1@0, s1@3 (mul latency),
  // m2@4 (add latency), s2@0.
  EXPECT_EQ(info.asap, (std::vector<int>{0, 3, 4, 0}));
  // ALAP against the dependence-height horizon (critical path = 7 cycles:
  // mul 3 + add 1 + mul 3).
  EXPECT_EQ(info.alap, (std::vector<int>{0, 3, 4, 6}));
  EXPECT_EQ(info.slack, (std::vector<int>{0, 0, 0, 6}));
  // The chain m1 -> s1 -> m2 is critical; s2 has 6 cycles of freedom.
  EXPECT_EQ(info.critical, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(info.chain, (std::vector<int>{0, 1, 2}));

  // Bounds. Dependence height: 7 + 1 (makespan counts the last writeback
  // cycle itself). Mul issue: 2 muls on one unit, (2-1)*1 + 3 + 1 = 5.
  // Add/sub issue: (2-1)*1 + 1 + 1 = 3. Write ports: ceil(4 results / 2)
  // cycles of writeback + min latency 1 = 3. Read ports: 6 input-operand
  // reads (2+1+1+2) / 4 per cycle -> 2 cycles + min latency 1 = 3.
  EXPECT_EQ(info.bounds.dep_height, 8);
  EXPECT_EQ(info.bounds.mul_issue, 5);
  EXPECT_EQ(info.bounds.addsub_issue, 3);
  EXPECT_EQ(info.bounds.rf_write_port, 3);
  EXPECT_EQ(info.bounds.rf_read_port, 3);
  EXPECT_EQ(info.bounds.rf_port(), 3);
  EXPECT_EQ(info.bounds.issue(), 5);
  EXPECT_EQ(info.bounds.tightest(), 8);
  EXPECT_STREQ(info.bounds.tightest_name(), "dep-height");

  // Problem::mobility agrees with slack by construction.
  for (size_t n = 0; n < pr.nodes.size(); ++n)
    EXPECT_EQ(info.slack[n], pr.mobility(static_cast<int>(n))) << "node " << n;

  sched::BoundGap at_bound = sched::gap_to_bounds(info.bounds, 8);
  EXPECT_EQ(at_bound.gap, 0);
  EXPECT_DOUBLE_EQ(at_bound.efficiency, 1.0);
  sched::BoundGap above = sched::gap_to_bounds(info.bounds, 10);
  EXPECT_EQ(above.gap, 2);
  EXPECT_DOUBLE_EQ(above.efficiency, 0.8);

  std::string chain = sched::describe_chain(pr, info.chain);
  EXPECT_NE(chain.find("->"), std::string::npos);
}

TEST(CriticalPath, BoundsNeverExceedAchievedMakespan) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  for (sched::Solver s : {sched::Solver::kSequential, sched::Solver::kList,
                          sched::Solver::kAnneal, sched::Solver::kBnb}) {
    sched::CompileOptions opt;
    opt.solver = s;
    if (s == sched::Solver::kBnb) {
      sched::CompileOptions warm;
      warm.solver = sched::Solver::kList;
      opt.bnb.upper_bound = sched::compile_program(body.program, warm).schedule.makespan + 1;
    }
    sched::CompileResult r = sched::compile_program(body.program, opt);
    sched::CriticalPathInfo info = sched::analyze_critical_path(r.problem);
    EXPECT_LE(info.bounds.tightest(), r.schedule.makespan);
    sched::BoundGap gap = sched::gap_to_bounds(info.bounds, r.schedule.makespan);
    EXPECT_EQ(gap.gap, r.schedule.makespan - info.bounds.tightest());
    EXPECT_GE(gap.gap, 0);
    EXPECT_GT(gap.efficiency, 0.0);
    EXPECT_LE(gap.efficiency, 1.0);
  }
}

trace::InputBindings loop_body_bindings(const trace::LoopBodyTrace& body) {
  curve::PointR1 q = curve::dbl(curve::to_r1(curve::deterministic_point(31)));
  curve::PointR2 e = curve::to_r2(curve::to_r1(curve::deterministic_point(32)));
  trace::InputBindings b;
  b.emplace_back(body.q_inputs[0], q.X);
  b.emplace_back(body.q_inputs[1], q.Y);
  b.emplace_back(body.q_inputs[2], q.Z);
  b.emplace_back(body.q_inputs[3], q.Ta);
  b.emplace_back(body.q_inputs[4], q.Tb);
  b.emplace_back(body.table_inputs[0], e.xpy);
  b.emplace_back(body.table_inputs[1], e.ymx);
  b.emplace_back(body.table_inputs[2], e.z2);
  b.emplace_back(body.table_inputs[3], e.dt2);
  return b;
}

// The acceptance criterion for `fourqc explain`: per backend, the stall
// classes sum exactly to SimStats::stall_cycles on the Alg. 1 loop body.
TEST(StallAttribution, LoopBodyConservationAllBackends) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  trace::InputBindings bindings = loop_body_bindings(body);
  for (sched::Solver s : {sched::Solver::kSequential, sched::Solver::kList,
                          sched::Solver::kAnneal, sched::Solver::kBnb}) {
    sched::CompileOptions opt;
    opt.solver = s;
    if (s == sched::Solver::kBnb) opt.bnb.upper_bound = 26;  // list reaches 25
    sched::CompileResult r = sched::compile_program(body.program, opt);

    obs::RecordingSink sink;
    asic::SimResult res = asic::simulate(r.sm, bindings, trace::EvalContext{}, &sink);
    asic::StallAttribution attr = asic::attribute_stalls(r.sm, sink.events);

    EXPECT_TRUE(attr.conservation_ok);
    EXPECT_EQ(attr.stalls.total(), res.stats.stall_cycles);
    // Idle accounting covers every non-issue cycle of each unit.
    EXPECT_EQ(attr.mul_idle.total(), res.stats.cycles - res.stats.mul_issues);
    EXPECT_EQ(attr.addsub_idle.total(), res.stats.cycles - res.stats.addsub_issues);
    // The per-cycle classification marks exactly the stall cycles.
    ASSERT_EQ(attr.stall_class_of_cycle.size(), static_cast<size_t>(res.stats.cycles));
    int marked = 0;
    for (int8_t c : attr.stall_class_of_cycle) marked += c >= 0;
    EXPECT_EQ(marked, res.stats.stall_cycles);

    // The report renders and mentions each unit row.
    std::string gantt = asic::render_gantt(r.sm, attr);
    EXPECT_NE(gantt.find("mul"), std::string::npos);
    EXPECT_NE(gantt.find("addsub"), std::string::npos);
  }
}

// Random-program property: conservation holds for any scheduled program,
// not just the loop body. Programs are random add/sub/mul/conj DAGs over a
// few inputs (no selects, so EvalContext{} suffices).
TEST(StallAttribution, RandomProgramsConserveStallCycles) {
  for (uint32_t seed = 1; seed <= 12; ++seed) {
    std::mt19937 rng(seed);
    trace::Program p;
    trace::Op in;
    in.kind = trace::OpKind::kInput;
    std::vector<int> ids;
    int n_inputs = 2 + static_cast<int>(rng() % 3);
    for (int i = 0; i < n_inputs; ++i) ids.push_back(p.add_op(in));

    int n_compute = 4 + static_cast<int>(rng() % 14);
    for (int i = 0; i < n_compute; ++i) {
      trace::Op op;
      switch (rng() % 4) {
        case 0: op.kind = trace::OpKind::kMul; break;
        case 1: op.kind = trace::OpKind::kAdd; break;
        case 2: op.kind = trace::OpKind::kSub; break;
        default: op.kind = trace::OpKind::kConj; break;
      }
      op.a = trace::Operand::of(ids[rng() % ids.size()]);
      if (op.kind != trace::OpKind::kConj)
        op.b = trace::Operand::of(ids[rng() % ids.size()]);
      ids.push_back(p.add_op(op));
    }
    // Every sink is an output so nothing is dead code.
    std::vector<bool> consumed(p.ops.size(), false);
    for (const trace::Op& op : p.ops) {
      if (op.a.ssa >= 0) consumed[static_cast<size_t>(op.a.ssa)] = true;
      if (op.b.ssa >= 0) consumed[static_cast<size_t>(op.b.ssa)] = true;
    }
    for (size_t i = 0; i < p.ops.size(); ++i)
      if (!consumed[i] && trace::is_compute(p.ops[i].kind))
        p.outputs.emplace_back(static_cast<int>(i), "out" + std::to_string(i));
    if (p.outputs.empty()) p.outputs.emplace_back(static_cast<int>(p.ops.size()) - 1, "out");
    trace::validate(p);

    trace::InputBindings bindings;
    for (int i = 0; i < n_inputs; ++i)
      bindings.emplace_back(i, field::Fp2::from_u64(seed + static_cast<uint32_t>(i) + 1,
                                                    2 * seed + static_cast<uint32_t>(i) + 3));

    for (sched::Solver s :
         {sched::Solver::kSequential, sched::Solver::kList, sched::Solver::kAnneal}) {
      sched::CompileOptions opt;
      opt.solver = s;
      sched::CompileResult r = sched::compile_program(p, opt);
      obs::RecordingSink sink;
      asic::SimResult res = asic::simulate(r.sm, bindings, trace::EvalContext{}, &sink);
      asic::StallAttribution attr = asic::attribute_stalls(r.sm, sink.events);
      EXPECT_TRUE(attr.conservation_ok) << "seed " << seed << " solver " << static_cast<int>(s);
      EXPECT_EQ(attr.stalls.total(), res.stats.stall_cycles)
          << "seed " << seed << " solver " << static_cast<int>(s);
      sched::CriticalPathInfo info = sched::analyze_critical_path(r.problem);
      EXPECT_LE(info.bounds.tightest(), r.schedule.makespan)
          << "seed " << seed << " solver " << static_cast<int>(s);
    }
  }
}

TEST(ExplainReport, JsonIsSelfDescribingAndParses) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  trace::InputBindings bindings = loop_body_bindings(body);
  sched::CompileResult r = sched::compile_program(body.program, {});
  sched::CriticalPathInfo info = sched::analyze_critical_path(r.problem);

  obs::RecordingSink sink;
  asic::SimResult res = asic::simulate(r.sm, bindings, trace::EvalContext{}, &sink);

  asic::BackendExplain be;
  be.name = "anneal";
  be.gap = sched::gap_to_bounds(info.bounds, r.schedule.makespan);
  be.stats = res.stats;
  be.attribution = asic::attribute_stalls(r.sm, sink.events);

  std::string json = asic::explain_json(info.bounds, {be});
  std::string err;
  obs::json::ValuePtr v = obs::json::parse(json, &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(v->at("report").string(), "fourq.explain.v1");
  EXPECT_TRUE(v->at("bounds").has("definitions"));
  EXPECT_TRUE(v->has("stall_classes"));
  const obs::json::Value& backend = v->at("backends").at(0);
  EXPECT_EQ(backend.at("name").string(), "anneal");
  EXPECT_EQ(static_cast<int>(backend.at("stall_cycles").number()), res.stats.stall_cycles);
  double sum = 0;
  const obs::json::Value& stalls = backend.at("stalls");
  for (const char* cls : {"raw-hazard", "rf-port", "issue-width", "drain", "unforced"})
    sum += stalls.at(cls).number();
  EXPECT_EQ(static_cast<int>(sum), res.stats.stall_cycles);
  ASSERT_EQ(backend.at("conservation_ok").type, obs::json::Type::kBool);
  EXPECT_TRUE(backend.at("conservation_ok").b);
}

}  // namespace
