// Tests for the calibrated SOTB-65nm voltage/frequency/energy model and the
// gate-equivalent area accounting (paper Fig. 3 / Fig. 4 substitutes).
#include "power/activity_energy.hpp"
#include "power/area.hpp"
#include "power/sotb65.hpp"

#include <gtest/gtest.h>

namespace fourq::power {
namespace {

constexpr int kCycles = 2500;  // representative SM cycle count

TEST(Sotb65, ReproducesNominalAnchor) {
  Sotb65Model m(kCycles);
  EXPECT_NEAR(m.latency_us(Sotb65Model::kVNominal), Sotb65Model::kLatencyNominalUs, 0.05);
  EXPECT_NEAR(m.energy_uj(Sotb65Model::kVNominal), Sotb65Model::kEnergyNominalUj, 0.02);
}

TEST(Sotb65, ReproducesLowVoltageAnchor) {
  Sotb65Model m(kCycles);
  EXPECT_NEAR(m.latency_us(Sotb65Model::kVMin), Sotb65Model::kLatencyMinVUs, 5.0);
  EXPECT_NEAR(m.energy_uj(Sotb65Model::kVMin), Sotb65Model::kEnergyMinVUj, 0.005);
}

TEST(Sotb65, FmaxMonotoneInVoltage) {
  Sotb65Model m(kCycles);
  double prev = 0.0;
  for (double v = 0.25; v <= 1.3; v += 0.05) {
    double f = m.fmax_mhz(v);
    EXPECT_GT(f, prev) << "fmax must increase with VDD (v=" << v << ")";
    prev = f;
  }
}

TEST(Sotb65, NominalFrequencyPlausible) {
  // ~2500 cycles in 10.1 us -> a couple of hundred MHz, sane for 65 nm.
  Sotb65Model m(kCycles);
  double f = m.fmax_mhz(1.20);
  EXPECT_GT(f, 100.0);
  EXPECT_LT(f, 500.0);
}

TEST(Sotb65, EnergyHasInteriorStructure) {
  // Dynamic energy dominates at high VDD, leakage-over-latency at very low
  // VDD; the energy-optimal voltage sits in the measured low-voltage region.
  Sotb65Model m(kCycles);
  double vopt = m.energy_optimal_vdd();
  EXPECT_GE(vopt, 0.20);
  EXPECT_LE(vopt, 0.60);
  EXPECT_LT(m.energy_uj(vopt), m.energy_uj(1.20));
}

TEST(Sotb65, ScalesWithCycleCount) {
  Sotb65Model fast(2000), slow(4000);
  // Same silicon model: latency scales with cycles at fixed voltage.
  EXPECT_NEAR(fast.latency_us(1.2), Sotb65Model::kLatencyNominalUs, 0.05);
  EXPECT_NEAR(slow.latency_us(1.2), Sotb65Model::kLatencyNominalUs, 0.05);
  // Frequency calibration absorbs the cycle count.
  EXPECT_NEAR(slow.fmax_mhz(1.2) / fast.fmax_mhz(1.2), 2.0, 0.01);
}

TEST(Sotb65, ThroughputMatchesTable2) {
  // Table II: 9.90e4 ops/s at 1.20 V. At 0.32 V the paper prints 0.857 ms
  // latency but "117 ops/s" — mutually inconsistent by 10x. The area-latency
  // product column (1400 kGE x 0.857 ms = 1200, as printed) confirms the
  // latency column, so the consistent throughput is 1/0.857 ms ≈ 1167 ops/s
  // (the paper's 117 is evidently a typo). See EXPERIMENTS.md.
  Sotb65Model m(kCycles);
  EXPECT_NEAR(m.throughput_ops(1.20), 9.90e4, 0.02e4);
  EXPECT_NEAR(m.throughput_ops(0.32), 1167.0, 10.0);
}

TEST(Area, DefaultConfigNearPaperTotal) {
  AreaBreakdown a = estimate_area();
  EXPECT_NEAR(a.total_kge(), kPaperTotalKge, 0.15 * kPaperTotalKge);
}

TEST(Area, KaratsubaSavesOneMultiplier) {
  AreaOptions kar, sch;
  sch.karatsuba = false;
  double d = estimate_area(sch).fp2_multiplier_kge - estimate_area(kar).fp2_multiplier_kge;
  EXPECT_GT(d, 60.0);  // roughly one F_p multiplier
}

TEST(Area, RegisterFileScalesWithPortsAndSize) {
  AreaOptions base;
  AreaOptions big = base;
  big.cfg.rf_size = 128;
  EXPECT_GT(estimate_area(big).register_file_kge, 1.9 * estimate_area(base).register_file_kge);
  AreaOptions wide = base;
  wide.cfg.rf_read_ports = 8;
  EXPECT_GT(estimate_area(wide).register_file_kge, estimate_area(base).register_file_kge);
}

TEST(Area, DeeperPipelineCostsFlops) {
  AreaOptions shallow, deep;
  shallow.cfg.mul_latency = 2;
  deep.cfg.mul_latency = 6;
  EXPECT_GT(estimate_area(deep).fp2_multiplier_kge, estimate_area(shallow).fp2_multiplier_kge);
}

// --- Activity-based energy attribution ------------------------------------

namespace {

asic::SimStats representative_activity(int cycles) {
  asic::SimStats s;
  s.cycles = cycles;
  s.mul_issues = cycles * 60 / 100;       // ~60% multiplier occupancy
  s.addsub_issues = cycles * 45 / 100;
  s.rf_reads = cycles * 2;
  s.rf_writes = cycles;
  return s;
}

}  // namespace

TEST(ActivityEnergy, TotalsMatchCalibratedModel) {
  Sotb65Model chip(kCycles);
  ActivityEnergyModel act(representative_activity(kCycles), chip);
  for (double v : {0.32, 0.6, 0.9, 1.2}) {
    EXPECT_NEAR(act.breakdown(v).total_uj(), chip.energy_uj(v), 1e-9) << v;
  }
}

TEST(ActivityEnergy, MultiplierDominatesSwitching) {
  Sotb65Model chip(kCycles);
  auto b = ActivityEnergyModel(representative_activity(kCycles), chip).breakdown(1.2);
  EXPECT_GT(b.mul_uj, b.addsub_uj);
  EXPECT_GT(b.mul_uj, b.rf_uj);
  EXPECT_GT(b.mul_uj, 0.5 * (b.addsub_uj + b.rf_uj + b.ctrl_uj));
}

TEST(ActivityEnergy, LeakageDominatesAtLowVoltage) {
  Sotb65Model chip(kCycles);
  ActivityEnergyModel act(representative_activity(kCycles), chip);
  auto low = act.breakdown(0.32);
  auto high = act.breakdown(1.2);
  EXPECT_GT(low.leak_uj / low.total_uj(), high.leak_uj / high.total_uj());
}

TEST(ActivityEnergy, RejectsMismatchedCycleCounts) {
  Sotb65Model chip(kCycles);
  asic::SimStats wrong = representative_activity(kCycles + 1);
  EXPECT_THROW(ActivityEnergyModel(wrong, chip), std::logic_error);
}

}  // namespace
}  // namespace fourq::power
