// Tests for the stage-accurate Fig. 1(b) multiplier pipeline model.
#include "rtl/fp2_mul_pipeline.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"

namespace fourq::rtl {
namespace {

Fp2 rand_fp2(Rng& rng) {
  return Fp2(Fp::from_u256(rng.next_u256()), Fp::from_u256(rng.next_u256()));
}

TEST(MulPipeline, SingleOperationLatencyThree) {
  Fp2MulPipeline pipe;
  Fp2 a = Fp2::from_u64(3, 5), b = Fp2::from_u64(7, 11);
  auto r1 = pipe.clock(std::make_pair(a, b));
  EXPECT_FALSE(r1.has_value());
  auto r2 = pipe.clock(std::nullopt);
  EXPECT_FALSE(r2.has_value());
  auto r3 = pipe.clock(std::nullopt);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(*r3, Fp2::mul_karatsuba(a, b));
  EXPECT_FALSE(pipe.busy());
}

TEST(MulPipeline, FullyPipelinedStream) {
  // One issue per cycle; results emerge in order, 3 cycles later.
  Fp2MulPipeline pipe;
  Rng rng(1301);
  std::deque<Fp2> expected;
  int received = 0;
  for (int t = 0; t < 64; ++t) {
    Fp2 a = rand_fp2(rng), b = rand_fp2(rng);
    expected.push_back(Fp2::mul_karatsuba(a, b));
    auto out = pipe.clock(std::make_pair(a, b));
    if (t >= Fp2MulPipeline::kLatency - 1) {
      ASSERT_TRUE(out.has_value()) << t;
      EXPECT_EQ(*out, expected.front());
      expected.pop_front();
      ++received;
    } else {
      EXPECT_FALSE(out.has_value());
    }
  }
  for (auto& out : pipe.drain()) {
    if (out.has_value()) {
      EXPECT_EQ(*out, expected.front());
      expected.pop_front();
      ++received;
    }
  }
  EXPECT_EQ(received, 64);
  EXPECT_TRUE(expected.empty());
}

TEST(MulPipeline, BubblesPassThrough) {
  Fp2MulPipeline pipe;
  Rng rng(1302);
  for (int i = 0; i < 20; ++i) {
    Fp2 a = rand_fp2(rng), b = rand_fp2(rng);
    Fp2 want = Fp2::mul_karatsuba(a, b);
    pipe.clock(std::make_pair(a, b));
    // Two bubbles, then the result.
    pipe.clock(std::nullopt);
    auto out = pipe.clock(std::nullopt);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, want);
  }
}

TEST(MulPipeline, EdgeOperands) {
  Fp pm1 = Fp() - Fp::from_u64(1);
  const Fp2 cases[] = {
      Fp2(), Fp2::from_u64(1), Fp2::from_u64(0, 1), Fp2(pm1, pm1), Fp2(pm1, Fp()),
  };
  for (const Fp2& a : cases) {
    for (const Fp2& b : cases) {
      Fp2MulPipeline pipe;
      pipe.clock(std::make_pair(a, b));
      auto out = pipe.drain();
      bool got = false;
      for (auto& o : out)
        if (o.has_value()) {
          EXPECT_EQ(*o, Fp2::mul_karatsuba(a, b));
          got = true;
        }
      EXPECT_TRUE(got);
    }
  }
}

TEST(MulPipeline, MatchesFieldLayerOnManyRandoms) {
  Fp2MulPipeline pipe;
  Rng rng(1303);
  std::deque<Fp2> expected;
  for (int t = 0; t < 500; ++t) {
    std::optional<std::pair<Fp2, Fp2>> in;
    if (rng.next_below(4) != 0) {  // 75% issue rate, random bubbles
      Fp2 a = rand_fp2(rng), b = rand_fp2(rng);
      expected.push_back(Fp2::mul_karatsuba(a, b));
      in = std::make_pair(a, b);
    }
    auto out = pipe.clock(in);
    if (out.has_value()) {
      ASSERT_FALSE(expected.empty());
      EXPECT_EQ(*out, expected.front());
      expected.pop_front();
    }
  }
}

TEST(MulPipeline, StageWidthAccounting) {
  // The pipeline's register bill: 2x254 + 256 + 254 + 256 + 254 flops.
  EXPECT_EQ(StageWidths::total_flops(), 254 + 254 + 256 + 254 + 256 + 254);
}

TEST(AddSubUnit, CommandsMatchFieldOps) {
  Rng rng(1304);
  Fp2 a = rand_fp2(rng), b = rand_fp2(rng);
  EXPECT_EQ(addsub_unit(AddSubCmd::kAdd, a, b), a + b);
  EXPECT_EQ(addsub_unit(AddSubCmd::kSub, a, b), a - b);
  EXPECT_EQ(addsub_unit(AddSubCmd::kConj, a, b), a.conj());
}

}  // namespace
}  // namespace fourq::rtl
