// Tests for the trace optimiser (CSE + DCE): semantics preserved exactly,
// op counts never increase, pass is idempotent, and the optimised program
// still compiles and simulates bit-exactly.
#include "trace/optimize.hpp"

#include <gtest/gtest.h>

#include "asic/simulator.hpp"
#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "sched/compile.hpp"
#include "trace/eval.hpp"
#include "trace/sm_trace.hpp"
#include "trace/tracer.hpp"

namespace fourq::trace {
namespace {

using curve::Fp2;

InputBindings remap_bindings(const InputBindings& b, const std::vector<int>& remap) {
  InputBindings out;
  for (const auto& [id, v] : b) {
    int nid = remap[static_cast<size_t>(id)];
    EXPECT_GE(nid, 0) << "input op disappeared";
    out.emplace_back(nid, v);
  }
  return out;
}

TEST(Optimize, RemovesHandMadeDuplicates) {
  Tracer t;
  Fp2Var a = t.input("a"), b = t.input("b");
  Fp2Var s1 = t.add(a, b);
  Fp2Var s2 = t.add(b, a);  // commutative duplicate
  Fp2Var m1 = t.mul(s1, s2);
  Fp2Var dead = t.mul(a, a);  // never used
  (void)dead;
  t.mark_output(m1, "out");

  OptimizeStats st;
  Program opt = optimize(t.program(), &st);
  EXPECT_EQ(st.cse_removed, 1);
  EXPECT_EQ(st.dead_removed, 1);
  // mul(s, s) survives as a single mul.
  OpStats ops = count_ops(opt);
  EXPECT_EQ(ops.muls, 1);
  EXPECT_EQ(ops.addsubs, 1);
}

TEST(Optimize, PreservesSemanticsOnHandMadeProgram) {
  Tracer t;
  Fp2Var a = t.input("a"), b = t.input("b");
  Fp2Var e1 = t.sub(a, b);
  Fp2Var e2 = t.sub(a, b);  // duplicate (non-commutative: order matters)
  Fp2Var e3 = t.sub(b, a);  // NOT a duplicate
  Fp2Var out = t.mul(t.mul(e1, e2), e3);
  t.mark_output(out, "out");

  OptimizeStats st;
  std::vector<int> remap;
  Program opt = optimize(t.program(), &st, &remap);
  EXPECT_EQ(st.cse_removed, 1);

  InputBindings bind{{a.id, Fp2::from_u64(5, 7)}, {b.id, Fp2::from_u64(11, 13)}};
  auto ref = evaluate(t.program(), bind, EvalContext{});
  auto got = evaluate(opt, remap_bindings(bind, remap), EvalContext{});
  EXPECT_EQ(got.at("out"), ref.at("out"));
}

TEST(Optimize, FullSmSemanticsPreserved) {
  SmTrace sm = build_sm_trace({});
  OptimizeStats st;
  std::vector<int> remap;
  Program opt = optimize(sm.program, &st, &remap);

  OpStats before = count_ops(sm.program), after = count_ops(opt);
  EXPECT_LE(after.muls, before.muls);
  EXPECT_LE(after.addsubs, before.addsubs);

  curve::Affine p = curve::deterministic_point(91);
  InputBindings bind{{sm.in_zero, Fp2()},
                     {sm.in_one, Fp2::from_u64(1)},
                     {sm.in_two_d, curve::curve_2d()},
                     {sm.in_px, p.x},
                     {sm.in_py, p.y}};
  Rng rng(801);
  for (int i = 0; i < 3; ++i) {
    U256 k = rng.next_u256();
    curve::Decomposition dec = curve::decompose(k);
    curve::RecodedScalar rec = curve::recode(dec.a);
    EvalContext ctx{&rec, dec.k_was_even};
    auto ref = evaluate(sm.program, bind, ctx);
    auto got = evaluate(opt, remap_bindings(bind, remap), ctx);
    EXPECT_EQ(got.at("x"), ref.at("x")) << k.to_hex();
    EXPECT_EQ(got.at("y"), ref.at("y"));
  }
}

TEST(Optimize, Idempotent) {
  SmTraceOptions topt;
  topt.endo = EndoVariant::kPaperCost;
  Program once = optimize(build_sm_trace(topt).program);
  OptimizeStats st;
  Program twice = optimize(once, &st);
  EXPECT_EQ(st.cse_removed, 0);
  EXPECT_EQ(st.dead_removed, 0);
  EXPECT_EQ(twice.ops.size(), once.ops.size());
}

TEST(Optimize, OptimisedProgramCompilesAndSimulates) {
  SmTraceOptions topt;
  topt.endo = EndoVariant::kPaperCost;
  SmTrace sm = build_sm_trace(topt);
  std::vector<int> remap;
  Program opt = optimize(sm.program, nullptr, &remap);

  sched::CompileResult r = sched::compile_program(opt, {});
  sched::CompileResult r0 = sched::compile_program(sm.program, {});
  EXPECT_LE(r.sm.cycles(), r0.sm.cycles());

  curve::Affine p = curve::deterministic_point(92);
  InputBindings bind{{sm.in_zero, Fp2()},
                     {sm.in_one, Fp2::from_u64(1)},
                     {sm.in_two_d, curve::curve_2d()},
                     {sm.in_px, p.x},
                     {sm.in_py, p.y}};
  for (size_t i = 0; i < sm.in_endo_consts.size(); ++i)
    bind.emplace_back(sm.in_endo_consts[i], Fp2::from_u64(3 + i, 7 + i));
  InputBindings bind_opt = remap_bindings(bind, remap);

  U256 k(424242);
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  EvalContext ctx{&rec, dec.k_was_even};
  asic::SimResult sim = asic::simulate(r.sm, bind_opt, ctx);
  auto ref = evaluate(opt, bind_opt, ctx);
  EXPECT_EQ(sim.outputs.at("x"), ref.at("x"));
  EXPECT_EQ(sim.outputs.at("y"), ref.at("y"));
}

TEST(Optimize, KeepsAllInputs) {
  Tracer t;
  Fp2Var a = t.input("a");
  Fp2Var unused = t.input("unused");
  (void)unused;
  t.mark_output(t.mul(a, a), "out");
  std::vector<int> remap;
  Program opt = optimize(t.program(), nullptr, &remap);
  EXPECT_EQ(count_ops(opt).inputs, 2);
  EXPECT_GE(remap[static_cast<size_t>(unused.id)], 0);
}

}  // namespace
}  // namespace fourq::trace
