// Tests for microcode ROM disassembly, size accounting and serialisation.
#include "asic/romfile.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "asic/simulator.hpp"
#include "curve/scalarmul.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::asic {
namespace {

sched::CompileResult compiled_body() {
  return sched::compile_program(trace::build_loop_body_trace().program, {});
}

TEST(RomFile, DisassemblyMentionsEveryUnit) {
  auto r = compiled_body();
  std::string listing = disassemble(r.sm);
  EXPECT_NE(listing.find("MUL0"), std::string::npos);
  EXPECT_NE(listing.find("add0"), std::string::npos);
  EXPECT_NE(listing.find("wb r"), std::string::npos);
  // One line per cycle.
  EXPECT_EQ(static_cast<int>(std::count(listing.begin(), listing.end(), '\n')),
            r.sm.cycles());
}

TEST(RomFile, DisassemblyRangeSelection) {
  auto r = compiled_body();
  std::string two = disassemble(r.sm, 0, 2);
  EXPECT_EQ(std::count(two.begin(), two.end(), '\n'), 2);
  EXPECT_NE(two.find("c0:"), std::string::npos);
  EXPECT_NE(two.find("c1:"), std::string::npos);
}

TEST(RomFile, StatsSaneAndConsistentWithConfig) {
  auto r = compiled_body();
  RomStats st = rom_stats(r.sm);
  EXPECT_EQ(st.words, r.sm.cycles());
  EXPECT_EQ(st.mul_issue_slots, 1);
  EXPECT_GT(st.word_bits, 20);
  EXPECT_LT(st.word_bits, 200);
  EXPECT_NEAR(st.total_kbits, st.words * st.word_bits / 1000.0, 1e-9);
}

TEST(RomFile, SaveLoadRoundTripsStructurally) {
  auto r = compiled_body();
  std::stringstream ss;
  save_rom(r.sm, ss);
  sched::CompiledSm back = load_rom(ss);
  EXPECT_EQ(back.cycles(), r.sm.cycles());
  EXPECT_EQ(back.rf_slots, r.sm.rf_slots);
  EXPECT_EQ(back.preload, r.sm.preload);
  EXPECT_EQ(back.outputs, r.sm.outputs);
  EXPECT_EQ(disassemble(back), disassemble(r.sm));
}

TEST(RomFile, ReloadedRomExecutesIdentically) {
  trace::SmTraceOptions topt;
  topt.endo = trace::EndoVariant::kPaperCost;
  trace::SmTrace sm = trace::build_sm_trace(topt);
  sched::CompileResult r = sched::compile_program(sm.program, {});

  std::stringstream ss;
  save_rom(r.sm, ss);
  sched::CompiledSm back = load_rom(ss);

  curve::Affine p = curve::deterministic_point(42);
  trace::InputBindings b;
  b.emplace_back(sm.in_zero, curve::Fp2());
  b.emplace_back(sm.in_one, curve::Fp2::from_u64(1));
  b.emplace_back(sm.in_two_d, curve::curve_2d());
  b.emplace_back(sm.in_px, p.x);
  b.emplace_back(sm.in_py, p.y);
  for (size_t i = 0; i < sm.in_endo_consts.size(); ++i)
    b.emplace_back(sm.in_endo_consts[i], curve::Fp2::from_u64(23 + i, 29 + i));

  U256 k(987654321);
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  trace::EvalContext ctx{&rec, dec.k_was_even};
  SimResult a1 = simulate(r.sm, b, ctx);
  SimResult a2 = simulate(back, b, ctx);
  EXPECT_EQ(a1.outputs.at("x"), a2.outputs.at("x"));
  EXPECT_EQ(a1.outputs.at("y"), a2.outputs.at("y"));
  EXPECT_EQ(a1.stats.cycles, a2.stats.cycles);
}

TEST(RomFile, RejectsBadHeader) {
  std::stringstream ss("not-a-rom 9\n");
  EXPECT_THROW(load_rom(ss), std::logic_error);
}

TEST(RomFile, RejectsTruncatedFile) {
  auto r = compiled_body();
  std::stringstream ss;
  save_rom(r.sm, ss);
  std::string text = ss.str();
  std::stringstream cut(text.substr(0, text.size() / 2));
  EXPECT_THROW(load_rom(cut), std::logic_error);
}

}  // namespace
}  // namespace fourq::asic
