// Fault-injection campaign over the emitted control ROM: every class of
// single-field corruption must be *detected* — either trapped by the
// simulator's structural checks or exposed as an output divergence from
// the golden model. Silent acceptance of a corrupted ROM would mean the
// verification flow has a blind spot.
#include <gtest/gtest.h>

#include "asic/simulator.hpp"
#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::asic {
namespace {

using curve::Fp2;

struct Fixture {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileResult compiled = sched::compile_program(body.program, {});
  trace::InputBindings bindings;
  std::map<std::string, Fp2> golden;

  Fixture() {
    curve::PointR1 q = curve::dbl(curve::to_r1(curve::deterministic_point(71)));
    curve::PointR2 e = curve::to_r2(curve::to_r1(curve::deterministic_point(72)));
    bindings.emplace_back(body.q_inputs[0], q.X);
    bindings.emplace_back(body.q_inputs[1], q.Y);
    bindings.emplace_back(body.q_inputs[2], q.Z);
    bindings.emplace_back(body.q_inputs[3], q.Ta);
    bindings.emplace_back(body.q_inputs[4], q.Tb);
    bindings.emplace_back(body.table_inputs[0], e.xpy);
    bindings.emplace_back(body.table_inputs[1], e.ymx);
    bindings.emplace_back(body.table_inputs[2], e.z2);
    bindings.emplace_back(body.table_inputs[3], e.dt2);
    golden = trace::evaluate(body.program, bindings, trace::EvalContext{});
  }

  // True if the corrupted ROM is detected (throws or output mismatch).
  bool detected(const sched::CompiledSm& broken) const {
    try {
      SimResult sim = simulate(broken, bindings, trace::EvalContext{});
      for (const auto& [name, v] : golden)
        if (sim.outputs.at(name) != v) return true;
      return false;  // silently accepted!
    } catch (const std::logic_error&) {
      return true;
    }
  }
};

Fixture& fx() {
  static Fixture f;
  return f;
}

TEST(FaultInjection, CorruptedSourceRegisters) {
  int injected = 0, detected = 0;
  for (size_t t = 0; t < fx().compiled.sm.rom.size(); ++t) {
    for (int which = 0; which < 2; ++which) {
      sched::CompiledSm broken = fx().compiled.sm;
      auto& w = broken.rom[t];
      sched::SrcSel* src = nullptr;
      if (!w.mul.empty())
        src = which == 0 ? &w.mul[0].a : &w.mul[0].b;
      else if (!w.addsub.empty())
        src = which == 0 ? &w.addsub[0].a : &w.addsub[0].b;
      if (src == nullptr || src->kind != sched::SrcSel::Kind::kReg) continue;
      src->reg = (src->reg + 1) % broken.rf_slots;
      ++injected;
      if (fx().detected(broken)) ++detected;
    }
  }
  ASSERT_GT(injected, 10);
  // Almost every register corruption must be caught; allow a tiny number of
  // logically-absorbed cases (e.g. reading a slot that happens to hold the
  // same value).
  EXPECT_GE(detected, injected - 1) << detected << "/" << injected;
}

TEST(FaultInjection, CorruptedWritebackTargets) {
  int injected = 0, detected = 0;
  for (size_t t = 0; t < fx().compiled.sm.rom.size(); ++t) {
    if (fx().compiled.sm.rom[t].writebacks.empty()) continue;
    sched::CompiledSm broken = fx().compiled.sm;
    auto& wb = broken.rom[t].writebacks[0];
    wb.reg = (wb.reg + 1) % broken.rf_slots;
    ++injected;
    if (fx().detected(broken)) ++detected;
  }
  ASSERT_GT(injected, 10);
  EXPECT_GE(detected, injected - 1);
}

TEST(FaultInjection, DroppedIssues) {
  int injected = 0, detected = 0;
  for (size_t t = 0; t < fx().compiled.sm.rom.size(); ++t) {
    const auto& w = fx().compiled.sm.rom[t];
    if (w.mul.empty() && w.addsub.empty()) continue;
    sched::CompiledSm broken = fx().compiled.sm;
    if (!broken.rom[t].mul.empty())
      broken.rom[t].mul.clear();
    else
      broken.rom[t].addsub.clear();
    ++injected;
    if (fx().detected(broken)) ++detected;
  }
  ASSERT_GT(injected, 10);
  // Dropping an issue always leaves a dangling writeback or missing value.
  EXPECT_EQ(detected, injected);
}

TEST(FaultInjection, SwappedOpcodes) {
  int injected = 0, detected = 0;
  for (size_t t = 0; t < fx().compiled.sm.rom.size(); ++t) {
    if (fx().compiled.sm.rom[t].addsub.empty()) continue;
    sched::CompiledSm broken = fx().compiled.sm;
    auto& u = broken.rom[t].addsub[0];
    u.op = (u.op == trace::OpKind::kAdd) ? trace::OpKind::kSub : trace::OpKind::kAdd;
    ++injected;
    if (fx().detected(broken)) ++detected;
  }
  ASSERT_GT(injected, 5);
  EXPECT_EQ(detected, injected);  // add<->sub always changes the value
}

TEST(FaultInjection, ForwardingMisdirectedToRegister) {
  // Rewriting a bus operand into a register read of a random slot either
  // trips the uninitialised check or corrupts the result.
  int injected = 0, detected = 0;
  Rng rng(1111);
  for (size_t t = 0; t < fx().compiled.sm.rom.size(); ++t) {
    const auto& w = fx().compiled.sm.rom[t];
    auto is_bus = [](const sched::SrcSel& s) {
      return s.kind == sched::SrcSel::Kind::kMulBus || s.kind == sched::SrcSel::Kind::kAddBus;
    };
    if (w.mul.empty() || !is_bus(w.mul[0].a)) continue;
    sched::CompiledSm broken = fx().compiled.sm;
    auto& src = broken.rom[t].mul[0].a;
    src.kind = sched::SrcSel::Kind::kReg;
    src.reg = static_cast<int>(rng.next_below(static_cast<uint64_t>(broken.rf_slots)));
    ++injected;
    if (fx().detected(broken)) ++detected;
  }
  ASSERT_GT(injected, 1);
  EXPECT_EQ(detected, injected);
}

}  // namespace
}  // namespace fourq::asic
