// RFC 6979 deterministic-nonce tests, including the RFC's published
// P-256/SHA-256 known-answer vectors (appendix A.2.5).
#include "hash/rfc6979.hpp"

#include <gtest/gtest.h>

#include "dsa/ecdsa_p256.hpp"

namespace fourq::hash {
namespace {

const U256 kQ =
    U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
const U256 kX =
    U256::from_hex("c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721");

TEST(Rfc6979, P256Sha256SampleNonce) {
  // RFC 6979 A.2.5, message "sample":
  //   k = A6E3C57DD01ABE90086538398355DD4C3B17AA873382B0F24D6129493D8AAD60
  U256 k = rfc6979_nonce(kX, kQ, Sha256::digest("sample"));
  EXPECT_EQ(k.to_hex(), "a6e3c57dd01abe90086538398355dd4c3b17aa873382b0f24d6129493d8aad60");
}

TEST(Rfc6979, P256Sha256TestNonce) {
  // RFC 6979 A.2.5, message "test":
  //   k = D16B6AE827F17175E040871A1C7EC3500192C4C92677336EC2537ACAEE0008E0
  U256 k = rfc6979_nonce(kX, kQ, Sha256::digest("test"));
  EXPECT_EQ(k.to_hex(), "d16b6ae827f17175e040871a1c7ec3500192c4c92677336ec2537acaee0008e0");
}

TEST(Rfc6979, P256SampleSignature) {
  // The full signature from the same vector:
  //   r = EFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716
  //   s = F7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8
  dsa::EcdsaP256 scheme;
  dsa::EcdsaP256::KeyPair kp;
  kp.secret = kX;
  auto pub = scheme.curve().to_affine(scheme.curve().scalar_mul_base(kX));
  ASSERT_TRUE(pub.has_value());
  kp.pub = *pub;
  // RFC 6979 A.2.5 also pins the public key; check it as a bonus.
  EXPECT_EQ(kp.pub.x.to_hex(),
            "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6");

  auto sig = scheme.sign(kp, "sample");
  EXPECT_EQ(sig.r.to_hex(), "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716");
  EXPECT_EQ(sig.s.to_hex(), "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8");
  EXPECT_TRUE(scheme.verify(kp.pub, "sample", sig));
}

TEST(Rfc6979, NonceInRangeAndDeterministic) {
  U256 k1 = rfc6979_nonce(kX, kQ, Sha256::digest("m"));
  U256 k2 = rfc6979_nonce(kX, kQ, Sha256::digest("m"));
  EXPECT_EQ(k1, k2);
  EXPECT_FALSE(k1.is_zero());
  EXPECT_LT(k1, kQ);
  EXPECT_NE(k1, rfc6979_nonce(kX, kQ, Sha256::digest("m2")));
}

TEST(Rfc6979, WorksForShorterOrders) {
  // FourQ's 246-bit N exercises the qlen < 256 path (bits2int shifting).
  U256 n = U256::from_hex("0029cbc14e5e0a72f05397829cbc14e5dfbd004dfe0f79992fb2540ec7768ce7");
  U256 x(12345);
  U256 k = rfc6979_nonce(x, n, Sha256::digest("fourq"));
  EXPECT_FALSE(k.is_zero());
  EXPECT_LT(k, n);
  EXPECT_EQ(k, rfc6979_nonce(x, n, Sha256::digest("fourq")));
}

}  // namespace
}  // namespace fourq::hash
