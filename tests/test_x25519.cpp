// Curve25519 baseline tests: the x-only ladder is cross-checked against an
// independent affine Montgomery-curve oracle, plus RFC 7748 behaviours.
#include "baseline/x25519.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fourq::baseline {
namespace {

using namespace f25519;

TEST(F25519, FieldBasics) {
  Rng rng(211);
  for (int i = 0; i < 100; ++i) {
    Fe25519 a = make(rng.next_u256()), b = make(rng.next_u256()), c = make(rng.next_u256());
    EXPECT_EQ(mul(a, b), mul(b, a));
    EXPECT_EQ(mul(a, mul(b, c)), mul(mul(a, b), c));
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
    EXPECT_EQ(add(a, sub(b, a)), b);
  }
}

TEST(F25519, MulMatchesGenericMod) {
  Rng rng(212);
  for (int i = 0; i < 200; ++i) {
    Fe25519 a = make(rng.next_u256()), b = make(rng.next_u256());
    U256 expect = mod(mul_wide(a.v, b.v), prime());
    EXPECT_EQ(mul(a, b).v, expect);
  }
}

TEST(F25519, MulEdgeValues) {
  U256 pm1;
  sub(prime(), U256(1), pm1);
  Fe25519 top{pm1};
  EXPECT_EQ(mul(top, top).v, U256(1));  // (-1)^2
  EXPECT_EQ(mul(top, one()).v, pm1);
  EXPECT_TRUE(mul(top, zero()).v.is_zero());
}

TEST(F25519, InverseIsInverse) {
  Rng rng(213);
  for (int i = 0; i < 20; ++i) {
    Fe25519 a = make(rng.next_u256());
    if (a.v.is_zero()) continue;
    EXPECT_EQ(mul(a, inv(a)), one());
  }
}

TEST(F25519, SqrtOfSquares) {
  Rng rng(214);
  for (int i = 0; i < 20; ++i) {
    Fe25519 a = make(rng.next_u256());
    Fe25519 a2 = sqr(a);
    auto r = f25519::sqrt(a2);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->v == a.v || addmod(r->v, a.v, prime()).is_zero());
  }
}

TEST(X25519, ClampSetsExpectedBits) {
  U256 k(~0ull, ~0ull, ~0ull, ~0ull);
  U256 c = clamp_scalar(k);
  EXPECT_EQ(c.w[0] & 7, 0u);
  EXPECT_FALSE(c.bit(255));
  EXPECT_TRUE(c.bit(254));
}

TEST(X25519, BasePointLiftsToCurve) {
  auto p = lift_x(make(U256(9)));
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(on_curve25519(*p));
}

TEST(X25519, LadderMatchesAffineOracle) {
  // The heart of the baseline validation: x-only ladder vs independent
  // affine double-and-add, on the standard base point, many scalars.
  auto base = lift_x(make(U256(9)));
  ASSERT_TRUE(base.has_value());
  Rng rng(215);
  for (int i = 0; i < 15; ++i) {
    U256 k = rng.next_u256();
    k.set_bit(255, false);
    if (k.is_zero()) continue;
    MontPoint expect = mont_scalar_mul(k, *base);
    if (expect.inf) continue;  // x-only output undefined at infinity
    Fe25519 got = ladder(k, make(U256(9)));
    EXPECT_EQ(got.v, expect.x.v) << "k=" << k.to_hex();
  }
}

TEST(X25519, LadderSmallScalars) {
  auto base = lift_x(make(U256(9)));
  ASSERT_TRUE(base.has_value());
  MontPoint acc = *base;
  for (uint64_t k = 1; k <= 16; ++k) {
    Fe25519 got = ladder(U256(k), make(U256(9)));
    EXPECT_EQ(got.v, acc.x.v) << k;
    acc = mont_add(acc, *base);
  }
}

TEST(X25519, MontOracleGroupLaws) {
  auto g = lift_x(make(U256(9)));
  ASSERT_TRUE(g.has_value());
  MontPoint g2 = mont_dbl(*g);
  MontPoint g3a = mont_add(g2, *g);
  MontPoint g3b = mont_add(*g, g2);
  EXPECT_TRUE(on_curve25519(g2));
  EXPECT_EQ(g3a.x.v, g3b.x.v);
  EXPECT_EQ(g3a.y.v, g3b.y.v);
  // P + (-P) = O
  MontPoint neg = *g;
  neg.y = sub(zero(), neg.y);
  EXPECT_TRUE(mont_add(*g, neg).inf);
}

TEST(X25519, DiffieHellmanAgreement) {
  Rng rng(216);
  for (int i = 0; i < 5; ++i) {
    U256 a = rng.next_u256(), b = rng.next_u256();
    U256 pub_a = x25519_base(a);
    U256 pub_b = x25519_base(b);
    EXPECT_EQ(x25519(a, pub_b), x25519(b, pub_a));
  }
}

TEST(X25519, CommutativityUnclamped) {
  Rng rng(217);
  U256 a(rng.next_u64()), b(rng.next_u64());
  U256 ab = mul_lo(a, b);
  Fe25519 via_compose = ladder(b, ladder(a, make(U256(9))));
  Fe25519 direct = ladder(ab, make(U256(9)));
  EXPECT_EQ(via_compose.v, direct.v);
}

TEST(X25519, HighBitOfUCoordinateMasked) {
  // RFC 7748: implementations MUST mask the top bit of u.
  U256 u(9);
  U256 u_with_top = u;
  u_with_top.set_bit(255, true);
  U256 k = Rng(218).next_u256();
  EXPECT_EQ(x25519(k, u), x25519(k, u_with_top));
}

}  // namespace
}  // namespace fourq::baseline
