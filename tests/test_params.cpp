// Validation of the candidate FourQ constants that are not printed in the
// DATE paper (subgroup order N, standard generator). These tests REPORT
// whether the candidates check out; the library is designed so that scalar
// multiplication never depends on them (DESIGN.md §2).
#include "curve/params.hpp"

#include <gtest/gtest.h>

#include "curve/point.hpp"
#include "curve/scalarmul.hpp"

namespace fourq::curve {
namespace {

TEST(ParamsValidation, CandidateOrderShape) {
  const U256& n = candidate_subgroup_order();
  EXPECT_TRUE(n.is_odd());
  EXPECT_EQ(n.top_bit(), 245);  // 246-bit prime per Costello–Longa
}

TEST(ParamsValidation, GeneratorOnCurve) {
  Affine g{candidate_generator_x(), candidate_generator_y()};
  EXPECT_TRUE(on_curve(g)) << "candidate generator is NOT on the curve; the "
                              "Schnorr layer will refuse to use it";
}

TEST(ParamsValidation, GeneratorHasOrderN) {
  auto v = validate_params();
  if (!v.generator_on_curve)
    GTEST_SKIP() << "generator not on curve; order check not meaningful";
  EXPECT_TRUE(v.generator_order_n) << "[N]G != O for the candidate constants";
}

TEST(ParamsValidation, SummaryAllOk) {
  auto v = validate_params();
  // This test documents the status of the unverifiable-from-paper constants.
  // If it fails, signature tests auto-skip; everything else is unaffected.
  EXPECT_TRUE(v.all_ok());
}

TEST(ParamsValidation, GeneratorNotSmallOrder) {
  auto v = validate_params();
  if (!v.generator_on_curve) GTEST_SKIP();
  PointR1 g = to_r1(Affine{candidate_generator_x(), candidate_generator_y()});
  // [392]G must not be the identity (G generates the large subgroup).
  EXPECT_FALSE(is_identity(mul_small(392, g)));
}

}  // namespace
}  // namespace fourq::curve
