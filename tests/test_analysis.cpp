// Tests for the static microcode verifier: clean ROMs lint clean across
// solvers, and every seeded defect in the mutation matrix is caught with
// the right diagnostic class.
#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include <set>

#include "asic/looped.hpp"
#include "obs/obs.hpp"
#include "sched/compile.hpp"
#include "sched/modulo.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::analysis {
namespace {

bool has_rule(const LintReport& r, Rule rule) {
  for (const Finding& f : r.findings)
    if (f.rule == rule) return true;
  return false;
}

struct BodyRom {
  trace::LoopBodyTrace body;
  sched::CompileResult res;

  explicit BodyRom(sched::Solver solver = sched::Solver::kList)
      : body(trace::build_loop_body_trace()) {
    sched::CompileOptions copt;
    copt.solver = solver;
    res = sched::compile_program(body.program, copt);
  }
};

// The loop-body trace takes its table entry pre-selected (plain inputs), so
// digit-addressed reads only exist in the full SM program; share one
// compilation across the select/taint tests.
struct SmRom {
  trace::SmTrace sm;
  sched::CompileResult res;
  SmRom() : sm(trace::build_sm_trace({})) { res = sched::compile_program(sm.program, {}); }

  static const SmRom& get() {
    static SmRom r;
    return r;
  }
};

// A register-file slot no control word, preload, output or select map
// touches — reads of it are guaranteed-undefined.
int unused_slot(const sched::CompiledSm& sm) {
  std::set<int> used;
  for (const auto& [op, reg] : sm.preload) used.insert(reg);
  for (const auto& [name, reg] : sm.outputs) used.insert(reg);
  for (const auto& m : sm.select_maps)
    for (const auto& variant : m.reg) used.insert(variant.begin(), variant.end());
  auto use_src = [&](const sched::SrcSel& s) {
    if (s.kind == sched::SrcSel::Kind::kReg) used.insert(s.reg);
  };
  for (const auto& w : sm.rom) {
    for (const auto& u : w.mul) { use_src(u.a); use_src(u.b); }
    for (const auto& u : w.addsub) { use_src(u.a); use_src(u.b); }
    for (const auto& wb : w.writebacks) used.insert(wb.reg);
  }
  for (int r = std::max(sm.cfg.rf_size, sm.rf_slots) - 1; r >= 0; --r)
    if (!used.count(r)) return r;
  ADD_FAILURE() << "no unused register-file slot";
  return -1;
}

TEST(AnalysisClean, LoopBodyAcrossSolvers) {
  for (sched::Solver s : {sched::Solver::kSequential, sched::Solver::kList,
                          sched::Solver::kAnneal}) {
    BodyRom r(s);
    LintReport rep = lint_rom(r.res.sm, r.body.program);
    EXPECT_TRUE(rep.ok()) << lint_text({{"body", rep}});
    EXPECT_TRUE(rep.equivalent);
    EXPECT_TRUE(rep.constant_time);
    EXPECT_EQ(rep.cycles, r.res.sm.cycles());
    EXPECT_EQ(rep.lifted_ops, rep.matched_ops);
    EXPECT_GT(rep.peak_live, 0);
    EXPECT_LE(rep.max_reads_in_cycle, r.res.sm.cfg.rf_read_ports);
    EXPECT_LE(rep.max_writes_in_cycle, r.res.sm.cfg.rf_write_ports);
  }
}

TEST(AnalysisClean, FullScalarMultiplication) {
  trace::SmTrace sm = trace::build_sm_trace({});
  sched::CompileResult res = sched::compile_program(sm.program, {});
  LintReport rep = lint_rom(res.sm, sm.program);
  EXPECT_TRUE(rep.ok()) << lint_text({{"sm", rep}});
  EXPECT_TRUE(rep.equivalent);
  EXPECT_TRUE(rep.constant_time);
  EXPECT_GT(rep.indexed_reads, 0);
  EXPECT_GT(rep.tainted_values, 0);
}

TEST(AnalysisClean, LoopedControllerSegments) {
  asic::LoopedSm sm = asic::build_looped_sm();
  const struct { const char* label; const sched::CompiledSm& rom;
                 const trace::Program& ref; } segs[] = {
      {"prologue", sm.prologue, sm.prologue_program},
      {"body", sm.body, sm.body_program},
      {"epilogue", sm.epilogue, sm.epilogue_program},
  };
  for (const auto& s : segs) {
    LintReport rep = lint_rom(s.rom, s.ref);
    EXPECT_TRUE(rep.ok()) << s.label << ":\n" << lint_text({{s.label, rep}});
    EXPECT_TRUE(rep.equivalent) << s.label;
  }
}

// ---- Seeded-defect matrix -------------------------------------------------

TEST(AnalysisDefects, ClobberedLiveRegister) {
  BodyRom r;
  sched::CompiledSm sm = r.res.sm;
  // Retarget the first writeback onto a preloaded input register that is
  // still read afterwards — its live value is clobbered.
  int wb_cycle = -1;
  for (int t = 0; t < sm.cycles() && wb_cycle < 0; ++t)
    if (!sm.rom[static_cast<size_t>(t)].writebacks.empty()) wb_cycle = t;
  ASSERT_GE(wb_cycle, 0);
  int victim = -1;
  for (const auto& [op, reg] : sm.preload) {
    for (int t = wb_cycle + 1; t < sm.cycles() && victim < 0; ++t)
      for (const auto& u : sm.rom[static_cast<size_t>(t)].addsub)
        if ((u.a.kind == sched::SrcSel::Kind::kReg && u.a.reg == reg) ||
            (u.b.kind == sched::SrcSel::Kind::kReg && u.b.reg == reg))
          victim = reg;
    if (victim >= 0) break;
  }
  ASSERT_GE(victim, 0) << "no preloaded register read after the first writeback";
  sm.rom[static_cast<size_t>(wb_cycle)].writebacks[0].reg = victim;

  LintReport rep = lint_rom(sm, r.body.program);
  EXPECT_FALSE(rep.ok());
  EXPECT_FALSE(rep.equivalent);
  // Consumers of the clobbered input now feed a value foreign to the DAG
  // (or the original destination is left undefined).
  EXPECT_TRUE(has_rule(rep, Rule::kAlienValue) ||
              has_rule(rep, Rule::kUndefinedRead) ||
              has_rule(rep, Rule::kOutputMismatch))
      << lint_text({{"clobber", rep}});
}

TEST(AnalysisDefects, SwappedWrites) {
  BodyRom r;
  sched::CompiledSm sm = r.res.sm;
  // Swap the destination registers of the first two writebacks that target
  // different slots.
  sched::WbCtrl* first = nullptr;
  for (auto& w : sm.rom) {
    for (auto& wb : w.writebacks) {
      if (!first) {
        first = &wb;
      } else if (wb.reg != first->reg) {
        std::swap(first->reg, wb.reg);
        first = nullptr;
        goto swapped;
      }
    }
  }
swapped:
  ASSERT_EQ(first, nullptr) << "fewer than two distinct writeback targets";
  LintReport rep = lint_rom(sm, r.body.program);
  EXPECT_FALSE(rep.ok());
  EXPECT_FALSE(rep.equivalent);
}

TEST(AnalysisDefects, RetargetedRead) {
  BodyRom r;
  sched::CompiledSm sm = r.res.sm;
  int dead = unused_slot(sm);
  ASSERT_GE(dead, 0);
  bool retargeted = false;
  for (auto& w : sm.rom) {
    for (auto& u : w.addsub)
      if (u.a.kind == sched::SrcSel::Kind::kReg) {
        u.a.reg = dead;
        retargeted = true;
        break;
      }
    if (retargeted) break;
  }
  ASSERT_TRUE(retargeted);
  LintReport rep = lint_rom(sm, r.body.program);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_rule(rep, Rule::kUndefinedRead)) << lint_text({{"read", rep}});
}

TEST(AnalysisDefects, DroppedWriteback) {
  BodyRom r;
  sched::CompiledSm sm = r.res.sm;
  for (auto& w : sm.rom)
    if (!w.writebacks.empty()) {
      w.writebacks.erase(w.writebacks.begin());
      break;
    }
  LintReport rep = lint_rom(sm, r.body.program);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_rule(rep, Rule::kResultDropped)) << lint_text({{"drop", rep}});
}

TEST(AnalysisDefects, WritePortOverflow) {
  BodyRom r;
  sched::CompiledSm sm = r.res.sm;
  for (auto& w : sm.rom)
    if (!w.writebacks.empty()) {
      while (static_cast<int>(w.writebacks.size()) <= sm.cfg.rf_write_ports)
        w.writebacks.push_back(w.writebacks.front());
      break;
    }
  LintReport rep = lint_rom(sm, r.body.program);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_rule(rep, Rule::kWritePortOverflow)) << lint_text({{"ports", rep}});
}

// The constant-time property: any per-digit difference in what an indexed
// read observes is a secret-dependent difference and must be flagged.
TEST(AnalysisDefects, DigitDependentRead) {
  const SmRom& r = SmRom::get();
  ASSERT_FALSE(r.res.sm.select_maps.empty());

  {  // One digit value would read an undefined register.
    sched::CompiledSm sm = r.res.sm;
    sm.select_maps[0].reg[0][0] = unused_slot(sm);
    LintReport rep = lint_rom(sm, r.sm.program);
    EXPECT_FALSE(rep.ok());
    EXPECT_FALSE(rep.constant_time);
    EXPECT_TRUE(has_rule(rep, Rule::kSelectCandidateUndefined))
        << lint_text({{"taint", rep}});
  }
  {  // One digit value would read the wrong (but defined) value.
    sched::CompiledSm sm = r.res.sm;
    ASSERT_GE(static_cast<int>(sm.select_maps[0].reg[0].size()), 2);
    sm.select_maps[0].reg[0][0] = sm.select_maps[0].reg[0][1];
    LintReport rep = lint_rom(sm, r.sm.program);
    EXPECT_FALSE(rep.ok());
    EXPECT_FALSE(rep.constant_time);
    EXPECT_TRUE(has_rule(rep, Rule::kSelectCandidateMismatch))
        << lint_text({{"taint", rep}});
  }
  {  // A digit value with no candidate at all (shape differs from the table).
    sched::CompiledSm sm = r.res.sm;
    sm.select_maps[0].reg[0].pop_back();
    LintReport rep = lint_rom(sm, r.sm.program);
    EXPECT_FALSE(rep.ok());
    EXPECT_FALSE(rep.constant_time);
    EXPECT_TRUE(has_rule(rep, Rule::kSelectShapeMismatch))
        << lint_text({{"taint", rep}});
  }
}

TEST(AnalysisWarnings, AdvisoryFindingsDoNotFailLint) {
  BodyRom r;
  sched::CompiledSm sm = r.res.sm;
  int dead = unused_slot(sm);
  ASSERT_GE(dead, 0);
  // Duplicate a completing result into an unused slot: legal, but the slot
  // is never read.
  bool added = false;
  for (auto& w : sm.rom)
    if (w.writebacks.size() == 1) {
      sched::WbCtrl extra = w.writebacks.front();
      extra.reg = dead;
      w.writebacks.push_back(extra);
      added = true;
      break;
    }
  ASSERT_TRUE(added);
  LintReport rep = lint_rom(sm, r.body.program);
  EXPECT_TRUE(rep.ok()) << lint_text({{"warn", rep}});
  EXPECT_TRUE(has_rule(rep, Rule::kNeverReadRegister));
  EXPECT_GT(rep.warnings(), 0);
  EXPECT_TRUE(rep.equivalent);
}

// ---- Modulo steady-state --------------------------------------------------

TEST(AnalysisModulo, CleanKernel) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::Problem pr = sched::build_problem(body.program, {});
  std::vector<int> outs;
  for (const auto& [id, name] : body.program.outputs) {
    (void)name;
    outs.push_back(id);
  }
  auto carried = sched::body_carried_deps(pr, body.q_inputs, outs);

  LintReport rep = lint_modulo(pr, carried);
  EXPECT_TRUE(rep.ok()) << lint_text({{"modulo", rep}});
  EXPECT_TRUE(rep.equivalent);

  sched::ModuloOptions tight;
  tight.max_ii = 1;  // below ResMII: no kernel exists
  LintReport infeasible = lint_modulo(pr, carried, tight);
  EXPECT_FALSE(infeasible.ok());
  EXPECT_TRUE(has_rule(infeasible, Rule::kModuloInfeasible));
}

// ---- Report formats and metrics -------------------------------------------

TEST(AnalysisReport, JsonIsSelfDescribing) {
  const SmRom& r = SmRom::get();
  LintReport good = lint_rom(r.res.sm, r.sm.program);

  sched::CompiledSm bad_sm = r.res.sm;
  bad_sm.select_maps[0].reg[0][0] = unused_slot(bad_sm);
  LintReport bad = lint_rom(bad_sm, r.sm.program);

  std::string json = lint_json({{"loop/list", good}, {"loop/bad", bad}});
  EXPECT_NE(json.find("\"report\":\"fourq.lint.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rules\":["), std::string::npos);
  EXPECT_NE(json.find("select-candidate-undefined"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"loop/list\""), std::string::npos);
  EXPECT_NE(json.find("\"constant_time\":true"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);

  std::string clean_json = lint_json({{"loop/list", good}});
  EXPECT_NE(clean_json.find("\"ok\":true"), std::string::npos);

  std::string text = lint_text({{"loop/list", good}});
  EXPECT_NE(text.find("== loop/list =="), std::string::npos);
  EXPECT_NE(text.find("constant-time certificate yes"), std::string::npos);
}

TEST(AnalysisReport, MetricsFeedTheRegistry) {
  obs::global().metrics.reset();
  BodyRom r;
  LintReport rep = lint_rom(r.res.sm, r.body.program);
  record_lint_metrics("loop/list", rep);
  obs::Registry& m = obs::global().metrics;
  EXPECT_EQ(m.counter("lint.programs").value(), 1u);
  EXPECT_EQ(m.counter("lint.errors").value(), 0u);
  EXPECT_EQ(m.gauge("lint.loop/list.equivalent").value(), 1.0);
  EXPECT_EQ(m.gauge("lint.loop/list.constant_time").value(), 1.0);
}

TEST(AnalysisReport, RuleTablesAreTotal) {
  for (int i = 0; i < kNumRules; ++i) {
    Rule rule = static_cast<Rule>(i);
    EXPECT_STRNE(rule_name(rule), "?");
    EXPECT_GT(std::string(rule_meaning(rule)).size(), 10u);
    severity_name(rule_severity(rule));
  }
}

}  // namespace
}  // namespace fourq::analysis
