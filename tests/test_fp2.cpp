// Unit tests for F_{p^2}, including bit-exactness of the paper's Algorithm 2
// (Karatsuba multiplication with lazy reduction).
#include "field/fp2.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fourq::field {
namespace {

Fp2 rand_fp2(Rng& rng) {
  return Fp2(Fp::from_u256(rng.next_u256()), Fp::from_u256(rng.next_u256()));
}

TEST(Fp2, KaratsubaMatchesSchoolbook) {
  Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    Fp2 x = rand_fp2(rng), y = rand_fp2(rng);
    EXPECT_EQ(Fp2::mul_karatsuba(x, y), Fp2::mul_schoolbook(x, y));
  }
}

TEST(Fp2, KaratsubaEdgeOperands) {
  Fp pm1 = Fp() - Fp::from_u64(1);  // p - 1, the largest canonical element
  const Fp2 cases[] = {
      Fp2(),
      Fp2::from_u64(1),
      Fp2::from_u64(0, 1),
      Fp2(pm1, pm1),
      Fp2(pm1, Fp()),
      Fp2(Fp(), pm1),
      Fp2(Fp::from_u64(1), pm1),
  };
  for (const Fp2& x : cases)
    for (const Fp2& y : cases)
      EXPECT_EQ(Fp2::mul_karatsuba(x, y), Fp2::mul_schoolbook(x, y))
          << x.to_hex() << " * " << y.to_hex();
}

TEST(Fp2, ImaginaryUnitSquaresToMinusOne) {
  Fp2 i = Fp2::from_u64(0, 1);
  EXPECT_EQ(i * i, -Fp2::from_u64(1));
  EXPECT_EQ(i.sqr(), -Fp2::from_u64(1));
}

TEST(Fp2, FieldAxioms) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    Fp2 a = rand_fp2(rng), b = rand_fp2(rng), c = rand_fp2(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * Fp2::from_u64(1), a);
    EXPECT_EQ(a + (-a), Fp2());
  }
}

TEST(Fp2, SqrMatchesMul) {
  Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    Fp2 a = rand_fp2(rng);
    EXPECT_EQ(a.sqr(), a * a);
  }
}

TEST(Fp2, ConjAndNorm) {
  Rng rng(44);
  for (int i = 0; i < 100; ++i) {
    Fp2 a = rand_fp2(rng);
    Fp2 n = a * a.conj();
    // a * conj(a) = norm(a), purely real.
    EXPECT_TRUE(n.im().is_zero());
    EXPECT_EQ(n.re(), a.norm());
    EXPECT_EQ(a.conj().conj(), a);
    // norm is multiplicative
    Fp2 b = rand_fp2(rng);
    EXPECT_EQ((a * b).norm(), a.norm() * b.norm());
  }
}

TEST(Fp2, InverseIsInverse) {
  Rng rng(45);
  for (int i = 0; i < 50; ++i) {
    Fp2 a = rand_fp2(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inv(), Fp2::from_u64(1));
  }
  EXPECT_EQ(Fp2::from_u64(0, 1).inv(), Fp2::from_u64(0) - Fp2::from_u64(0, 1));
  EXPECT_THROW(Fp2().inv(), std::logic_error);
}

TEST(Fp2, SqrtOfSquares) {
  Rng rng(46);
  int found = 0;
  for (int i = 0; i < 40; ++i) {
    Fp2 a = rand_fp2(rng);
    Fp2 sq = a.sqr();
    Fp2 root;
    ASSERT_TRUE(sq.sqrt(root)) << a.to_hex();
    EXPECT_TRUE(root == a || root == -a);
    ++found;
  }
  EXPECT_GT(found, 0);
}

TEST(Fp2, SqrtSpecialValues) {
  Fp2 root;
  EXPECT_TRUE(Fp2().sqrt(root));
  EXPECT_EQ(root, Fp2());
  EXPECT_TRUE(Fp2::from_u64(4).sqrt(root));
  EXPECT_TRUE(root == Fp2::from_u64(2) || root == -Fp2::from_u64(2));
  // -1 = i^2 has the root i in F_{p^2} even though it has none in F_p.
  EXPECT_TRUE((-Fp2::from_u64(1)).sqrt(root));
  EXPECT_TRUE(root == Fp2::from_u64(0, 1) || root == -Fp2::from_u64(0, 1));
}

TEST(Fp2, NonSquareDetected) {
  // In F_{p^2} exactly half the non-zero elements are squares; find one
  // non-square deterministically by scanning small constants.
  bool found_nonsquare = false;
  for (uint64_t k = 2; k < 50 && !found_nonsquare; ++k) {
    Fp2 cand = Fp2::from_u64(k, 1);
    Fp2 root;
    if (!cand.sqrt(root)) found_nonsquare = true;
  }
  EXPECT_TRUE(found_nonsquare);
}

TEST(Fp2, DblIsAddSelf) {
  Rng rng(47);
  Fp2 a = rand_fp2(rng);
  EXPECT_EQ(a.dbl(), a + a);
}

TEST(Fp2, ConjIsRingHomomorphism) {
  Rng rng(49);
  for (int i = 0; i < 100; ++i) {
    Fp2 a = rand_fp2(rng), b = rand_fp2(rng);
    EXPECT_EQ((a * b).conj(), a.conj() * b.conj());
    EXPECT_EQ((a + b).conj(), a.conj() + b.conj());
    EXPECT_EQ(a.conj().norm(), a.norm());
  }
}

TEST(Fp2, FrobeniusViaConj) {
  // For z in F_{p^2}, z^p == conj(z) (the p-power Frobenius): check on
  // random elements via pow.
  Rng rng(50);
  U256 p_exp = U256::from_hex("7fffffffffffffffffffffffffffffff");
  for (int i = 0; i < 5; ++i) {
    Fp2 z = rand_fp2(rng);
    Fp2 zp = Fp2::from_u64(1);
    // z^p via square-and-multiply over the 127-bit exponent.
    for (int bit = 126; bit >= 0; --bit) {
      zp = zp.sqr();
      if (p_exp.bit(static_cast<unsigned>(bit))) zp = zp * z;
    }
    EXPECT_EQ(zp, z.conj());
  }
}

// Multiplication count sanity: Karatsuba really performs 3 F_p
// multiplications per F_{p^2} multiplication. This is asserted structurally
// by the datapath model (see trace/sched tests); here we check the value
// identity (a0+a1)(b0+b1)-a0b0-a1b1 == a0b1+a1b0 that justifies it.
TEST(Fp2, KaratsubaIdentity) {
  Rng rng(48);
  for (int i = 0; i < 100; ++i) {
    Fp a0 = Fp::from_u256(rng.next_u256()), a1 = Fp::from_u256(rng.next_u256());
    Fp b0 = Fp::from_u256(rng.next_u256()), b1 = Fp::from_u256(rng.next_u256());
    Fp lhs = (a0 + a1) * (b0 + b1) - a0 * b0 - a1 * b1;
    EXPECT_EQ(lhs, a0 * b1 + a1 * b0);
  }
}

}  // namespace
}  // namespace fourq::field
