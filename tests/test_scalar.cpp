// Tests for scalar decomposition and the signed (GLV-SAC) recoding
// (paper Alg. 1, steps 3–5).
#include "curve/scalar.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/u128.hpp"

namespace fourq::curve {
namespace {

// Reconstructs sum_i t_i * sign_i * 2^i as a signed 128-bit value.
__int128 reconstruct(const RecodedScalar& r, int j) {
  __int128 acc = 0;
  for (int i = 0; i < kDigits; ++i) {
    int t = (j == 0) ? 1 : ((r.digit[i] >> (j - 1)) & 1);
    if (t) {
      __int128 term = static_cast<__int128>(1) << i;
      acc += (r.sign[i] > 0) ? term : -term;
    }
  }
  return acc;
}

TEST(Decompose, OddScalarPassesThrough) {
  U256 k(0x123456789abcdef1ull, 2, 3, 4);
  Decomposition d = decompose(k);
  EXPECT_FALSE(d.k_was_even);
  EXPECT_EQ(d.a[0], k.w[0]);
  EXPECT_EQ(d.a[1], k.w[1]);
  EXPECT_EQ(d.a[2], k.w[2]);
  EXPECT_EQ(d.a[3], k.w[3]);
}

TEST(Decompose, EvenScalarShiftsByOne) {
  U256 k(100, 7, 8, 9);
  Decomposition d = decompose(k);
  EXPECT_TRUE(d.k_was_even);
  EXPECT_EQ(d.a[0], 101u);
  EXPECT_EQ(d.a[1], 7u);
}

TEST(Decompose, EvenScalarCarryPropagates) {
  U256 k(~0ull - 1, ~0ull, ~0ull, 5);  // low word even, all-ones middle
  Decomposition d = decompose(k);
  EXPECT_TRUE(d.k_was_even);
  EXPECT_EQ(d.a[0], ~0ull);
  EXPECT_EQ(d.a[1], ~0ull);
  EXPECT_EQ(d.a[3], 5u);
}

TEST(Decompose, ZeroScalar) {
  Decomposition d = decompose(U256());
  EXPECT_TRUE(d.k_was_even);
  EXPECT_EQ(d.a[0], 1u);
  EXPECT_EQ(d.a[1], 0u);
}

TEST(Recode, RejectsEvenA1) { EXPECT_THROW(recode({2, 0, 0, 0}), std::logic_error); }

TEST(Recode, SignsReconstructA1) {
  Rng rng(71);
  for (int iter = 0; iter < 500; ++iter) {
    std::array<uint64_t, 4> a{rng.next_u64() | 1, rng.next_u64(), rng.next_u64(),
                              rng.next_u64()};
    RecodedScalar r = recode(a);
    EXPECT_EQ(reconstruct(r, 0), static_cast<__int128>(a[0]));
  }
}

TEST(Recode, DigitsReconstructAllScalars) {
  Rng rng(72);
  for (int iter = 0; iter < 500; ++iter) {
    std::array<uint64_t, 4> a{rng.next_u64() | 1, rng.next_u64(), rng.next_u64(),
                              rng.next_u64()};
    RecodedScalar r = recode(a);
    for (int j = 1; j < 4; ++j)
      EXPECT_EQ(reconstruct(r, j), static_cast<__int128>(a[j])) << "j=" << j;
  }
}

TEST(Recode, ExtremeValues) {
  for (uint64_t a1 : {1ull, 3ull, ~0ull, (1ull << 63) | 1}) {
    for (uint64_t aj : {0ull, 1ull, ~0ull, 1ull << 63}) {
      std::array<uint64_t, 4> a{a1, aj, aj, aj};
      RecodedScalar r = recode(a);
      EXPECT_EQ(reconstruct(r, 0), static_cast<__int128>(a1));
      for (int j = 1; j < 4; ++j) EXPECT_EQ(reconstruct(r, j), static_cast<__int128>(aj));
    }
  }
}

TEST(Recode, TopSignAlwaysPositive) {
  Rng rng(73);
  for (int iter = 0; iter < 100; ++iter) {
    std::array<uint64_t, 4> a{rng.next_u64() | 1, rng.next_u64(), rng.next_u64(),
                              rng.next_u64()};
    RecodedScalar r = recode(a);
    EXPECT_EQ(r.sign[kDigits - 1], +1);
  }
}

TEST(Recode, AllSignsNonZeroAndDigitsInRange) {
  Rng rng(74);
  for (int iter = 0; iter < 100; ++iter) {
    std::array<uint64_t, 4> a{rng.next_u64() | 1, rng.next_u64(), rng.next_u64(),
                              rng.next_u64()};
    RecodedScalar r = recode(a);
    for (int i = 0; i < kDigits; ++i) {
      EXPECT_TRUE(r.sign[i] == 1 || r.sign[i] == -1);
      EXPECT_LE(r.digit[i], 7);
    }
  }
}

// Exhaustive check on small scalars: every (a1 odd < 64, a2 < 64).
TEST(Recode, ExhaustiveSmall) {
  for (uint64_t a1 = 1; a1 < 64; a1 += 2) {
    for (uint64_t a2 = 0; a2 < 64; ++a2) {
      std::array<uint64_t, 4> a{a1, a2, 63 - a2, a2 ^ 0x15};
      RecodedScalar r = recode(a);
      EXPECT_EQ(reconstruct(r, 0), static_cast<__int128>(a1));
      EXPECT_EQ(reconstruct(r, 1), static_cast<__int128>(a2));
      EXPECT_EQ(reconstruct(r, 2), static_cast<__int128>(63 - a2));
      EXPECT_EQ(reconstruct(r, 3), static_cast<__int128>(a2 ^ 0x15));
    }
  }
}

}  // namespace
}  // namespace fourq::curve
