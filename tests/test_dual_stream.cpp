// Dual-stream throughput program tests: two independent scalar
// multiplications share one schedule; both results must be exact, and the
// combined schedule must beat two back-to-back single-stream runs.
#include <gtest/gtest.h>

#include "asic/simulator.hpp"
#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::trace {
namespace {

using curve::Fp2;

InputBindings dual_bindings(const DualSmTrace& sm, const curve::Affine& p0,
                            const curve::Affine& p1) {
  InputBindings b;
  b.emplace_back(sm.in_zero, Fp2());
  b.emplace_back(sm.in_one, Fp2::from_u64(1));
  b.emplace_back(sm.in_two_d, curve::curve_2d());
  b.emplace_back(sm.in_px[0], p0.x);
  b.emplace_back(sm.in_py[0], p0.y);
  b.emplace_back(sm.in_px[1], p1.x);
  b.emplace_back(sm.in_py[1], p1.y);
  for (size_t i = 0; i < sm.in_endo_consts.size(); ++i)
    b.emplace_back(sm.in_endo_consts[i], Fp2::from_u64(3 + i, 7 + i));
  return b;
}

TEST(DualStream, InterpreterMatchesScalarMulOnBothStreams) {
  DualSmTrace sm = build_dual_sm_trace({});  // functional variant
  curve::Affine p0 = curve::deterministic_point(101);
  curve::Affine p1 = curve::deterministic_point(102);
  InputBindings b = dual_bindings(sm, p0, p1);

  Rng rng(1201);
  for (int i = 0; i < 2; ++i) {
    U256 k0 = rng.next_u256(), k1 = rng.next_u256();
    if (i == 1) k1.set_bit(0, false);  // one even scalar
    curve::Decomposition d0 = curve::decompose(k0), d1 = curve::decompose(k1);
    curve::RecodedScalar r0 = curve::recode(d0.a), r1 = curve::recode(d1.a);
    EvalContext ctx;
    ctx.recoded = &r0;
    ctx.k_was_even = d0.k_was_even;
    ctx.recoded2 = &r1;
    ctx.k2_was_even = d1.k_was_even;
    auto out = evaluate(sm.program, b, ctx);
    curve::Affine e0 = curve::to_affine(curve::scalar_mul(k0, p0));
    curve::Affine e1 = curve::to_affine(curve::scalar_mul(k1, p1));
    EXPECT_EQ(out.at("x0"), e0.x);
    EXPECT_EQ(out.at("y0"), e0.y);
    EXPECT_EQ(out.at("x1"), e1.x);
    EXPECT_EQ(out.at("y1"), e1.y);
  }
}

TEST(DualStream, SimulatorMatchesInterpreter) {
  SmTraceOptions topt;
  topt.endo = EndoVariant::kPaperCost;
  DualSmTrace sm = build_dual_sm_trace(topt);
  sched::CompileOptions copt;
  copt.cfg.rf_size = 128;  // two working sets + two tables
  sched::CompileResult r = sched::compile_program(sm.program, copt);

  curve::Affine p0 = curve::deterministic_point(103);
  curve::Affine p1 = curve::deterministic_point(104);
  InputBindings b = dual_bindings(sm, p0, p1);
  Rng rng(1202);
  U256 k0 = rng.next_u256(), k1 = rng.next_u256();
  curve::Decomposition d0 = curve::decompose(k0), d1 = curve::decompose(k1);
  curve::RecodedScalar r0 = curve::recode(d0.a), r1 = curve::recode(d1.a);
  EvalContext ctx;
  ctx.recoded = &r0;
  ctx.k_was_even = d0.k_was_even;
  ctx.recoded2 = &r1;
  ctx.k2_was_even = d1.k_was_even;

  asic::SimResult sim = asic::simulate(r.sm, b, ctx);
  auto ref = evaluate(sm.program, b, ctx);
  for (const char* name : {"x0", "y0", "x1", "y1"})
    EXPECT_EQ(sim.outputs.at(name), ref.at(name)) << name;
}

TEST(DualStream, ThroughputBeatsTwoSequentialRuns) {
  SmTraceOptions topt;
  topt.endo = EndoVariant::kPaperCost;
  sched::CompileOptions copt;
  copt.cfg.rf_size = 128;
  sched::CompileResult dual = sched::compile_program(build_dual_sm_trace(topt).program, copt);
  sched::CompileResult single = sched::compile_program(build_sm_trace(topt).program, {});
  // Two interleaved SMs must finish faster than two back-to-back ones.
  EXPECT_LT(dual.sm.cycles(), 2 * single.sm.cycles());
  // And cost fewer cycles per result than one-at-a-time operation.
  double cycles_per_sm = dual.sm.cycles() / 2.0;
  EXPECT_LT(cycles_per_sm, 0.85 * single.sm.cycles());
}

TEST(DualStream, MissingSecondScalarRejected) {
  SmTraceOptions topt;
  topt.endo = EndoVariant::kPaperCost;
  DualSmTrace sm = build_dual_sm_trace(topt);
  curve::Affine p = curve::deterministic_point(105);
  InputBindings b = dual_bindings(sm, p, p);
  curve::Decomposition d = curve::decompose(U256(7));
  curve::RecodedScalar r = curve::recode(d.a);
  EvalContext ctx;
  ctx.recoded = &r;  // recoded2 deliberately missing
  EXPECT_THROW(evaluate(sm.program, b, ctx), std::logic_error);
}

}  // namespace
}  // namespace fourq::trace
