// Unit tests for the 256/512-bit integer substrate.
#include "common/u256.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fourq {
namespace {

TEST(U256, HexRoundTrip) {
  U256 v = U256::from_hex("0x0123456789abcdef00000000000000000000000000000000fedcba9876543210");
  EXPECT_EQ(v.w[0], 0xfedcba9876543210ull);
  EXPECT_EQ(v.w[3], 0x0123456789abcdefull);
  EXPECT_EQ(v.to_hex(), "0123456789abcdef00000000000000000000000000000000fedcba9876543210");
  EXPECT_EQ(U256::from_hex(v.to_hex()), v);
}

TEST(U256, HexParsesShortStrings) {
  EXPECT_EQ(U256::from_hex("ff"), U256(0xff));
  EXPECT_EQ(U256::from_hex("0"), U256());
  EXPECT_EQ(U256::from_hex("10000000000000000"), U256(0, 1, 0, 0));
}

TEST(U256, HexRejectsInvalid) {
  EXPECT_THROW(U256::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW(U256::from_hex(std::string(65, 'f')), std::overflow_error);
}

TEST(U256, AddCarryChain) {
  U256 a(~0ull, ~0ull, ~0ull, ~0ull);
  U256 r;
  EXPECT_EQ(add(a, U256(1), r), 1u);
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(add(a, U256(), r), 0u);
  EXPECT_EQ(r, a);
}

TEST(U256, SubBorrowChain) {
  U256 r;
  EXPECT_EQ(sub(U256(), U256(1), r), 1u);
  EXPECT_EQ(r, U256(~0ull, ~0ull, ~0ull, ~0ull));
  EXPECT_EQ(sub(U256(5), U256(3), r), 0u);
  EXPECT_EQ(r, U256(2));
}

TEST(U256, AddSubInverse) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    U256 a = rng.next_u256(), b = rng.next_u256();
    U256 s, d;
    uint64_t c = add(a, b, s);
    uint64_t bw = sub(s, b, d);
    EXPECT_EQ(d, a);
    EXPECT_EQ(c, bw);  // wraparound is symmetric
  }
}

TEST(U256, Comparisons) {
  U256 a(1), b(0, 1, 0, 0);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_GE(b, b);
  EXPECT_FALSE(a < a);
}

TEST(U256, TopBit) {
  EXPECT_EQ(U256().top_bit(), -1);
  EXPECT_EQ(U256(1).top_bit(), 0);
  EXPECT_EQ(U256(0, 0, 0, 0x8000000000000000ull).top_bit(), 255);
  EXPECT_EQ(U256(0, 2, 0, 0).top_bit(), 65);
}

TEST(U256, ShiftsMatchMultiplication) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    U256 a = rng.next_u256();
    unsigned n = static_cast<unsigned>(rng.next_below(255)) + 1;
    // shl by n == mul by 2^n mod 2^256
    U256 two_n;
    two_n.set_bit(n, true);
    EXPECT_EQ(shl(a, n), mul_lo(a, two_n)) << "n=" << n;
    // shr then shl clears low bits only
    U256 back = shl(shr(a, n), n);
    U256 mask_cleared = a;
    for (unsigned j = 0; j < n; ++j) mask_cleared.set_bit(j, false);
    EXPECT_EQ(back, mask_cleared);
  }
}

TEST(U256, ShiftEdgeCases) {
  U256 a(0x123456789abcdef0ull, 1, 2, 3);
  EXPECT_EQ(shl(a, 0), a);
  EXPECT_EQ(shr(a, 0), a);
  EXPECT_TRUE(shl(a, 256).is_zero());
  EXPECT_TRUE(shr(a, 256).is_zero());
  EXPECT_EQ(shl(U256(1), 255).top_bit(), 255);
}

TEST(U256, MulWideKnownValues) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  U512 p = mul_wide(U256(~0ull), U256(~0ull));
  EXPECT_EQ(p.w[0], 1ull);
  EXPECT_EQ(p.w[1], ~0ull - 1);
  EXPECT_EQ(p.w[2], 0ull);
  // max * max = 2^512 - 2^257 + 1
  U256 m(~0ull, ~0ull, ~0ull, ~0ull);
  U512 q = mul_wide(m, m);
  EXPECT_EQ(q.w[0], 1ull);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(q.w[i], 0ull);
  EXPECT_EQ(q.w[4], ~0ull - 1);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(q.w[i], ~0ull);
}

TEST(U256, MulCommutativeAndDistributive) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    U256 a = rng.next_u256(), b = rng.next_u256(), c = rng.next_u256();
    EXPECT_EQ(mul_wide(a, b), mul_wide(b, a));
    // a*(b+c) == a*b + a*c  (mod 2^512, tracking the 2^256 carry of b+c)
    U256 bc;
    uint64_t carry = add(b, c, bc);
    U512 lhs = mul_wide(a, bc);
    if (carry) {
      // add a << 256
      U512 shift_a;
      for (int k = 0; k < 4; ++k) shift_a.w[k + 4] = a.w[k];
      U512 t;
      add(lhs, shift_a, t);
      lhs = t;
    }
    U512 rhs;
    add(mul_wide(a, b), mul_wide(a, c), rhs);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(U256, ModAgainstLongDivisionProperties) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    U256 m = rng.next_u256();
    if (m.is_zero()) continue;
    U256 a = rng.next_u256();
    U256 r = mod(a, m);
    EXPECT_LT(r, m);
    // (a - r) divisible by m: check a == q*m + r by reconstructing with shifts
    // via the identity mod(a - r, m) == 0.
    U256 diff;
    sub(a, r, diff);
    EXPECT_TRUE(mod(diff, m).is_zero());
  }
}

TEST(U256, Mod512) {
  // 2^300 mod (2^255 - 19) = 19 * 2^45
  U512 a;
  a.w[4] = uint64_t{1} << 44;  // 2^(256+44) = 2^300
  U256 p25519 = U256::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed");
  U256 r = mod(a, p25519);
  EXPECT_EQ(r, U256(uint64_t{19} << 45));
}

TEST(U256, AddmodSubmodRoundtrip) {
  Rng rng(5);
  U256 m = U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  for (int i = 0; i < 200; ++i) {
    U256 a = mod(rng.next_u256(), m), b = mod(rng.next_u256(), m);
    U256 s = addmod(a, b, m);
    EXPECT_LT(s, m);
    EXPECT_EQ(submod(s, b, m), a);
    EXPECT_EQ(submod(s, a, m), b);
  }
}

TEST(U512, ShiftRoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    U512 a;
    for (auto& w : a.w) w = rng.next_u64();
    unsigned n = static_cast<unsigned>(rng.next_below(511)) + 1;
    U512 s = shr(shl(a, n), n);
    // shifting left then right drops the top n bits
    U512 masked = a;
    for (int bit = 511; bit >= static_cast<int>(512 - n); --bit)
      masked.w[bit / 64] &= ~(uint64_t{1} << (bit % 64));
    EXPECT_EQ(s, masked);
  }
}

TEST(U512, SetBitAndBitAccess) {
  U256 v;
  v.set_bit(200, true);
  EXPECT_TRUE(v.bit(200));
  v.set_bit(200, false);
  EXPECT_TRUE(v.is_zero());
}

TEST(U256, ModByOneAndSelf) {
  Rng rng(7);
  U256 a = rng.next_u256();
  EXPECT_TRUE(mod(a, U256(1)).is_zero());
  EXPECT_TRUE(mod(a, a.is_zero() ? U256(1) : a).is_zero());
  EXPECT_EQ(mod(U256(5), U256(7)), U256(5));
}

TEST(U256, AddmodAtModulusBoundary) {
  U256 m = U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  U256 m1;
  sub(m, U256(1), m1);
  // (m-1) + (m-1) mod m == m-2.
  U256 m2;
  sub(m, U256(2), m2);
  EXPECT_EQ(addmod(m1, m1, m), m2);
  EXPECT_EQ(submod(U256(), m1, m), U256(1));
  EXPECT_TRUE(addmod(m1, U256(1), m).is_zero());
}

TEST(U256, MulWideAgainstShiftDecomposition) {
  // a * 2^k == shl(a, k) extended into 512 bits.
  Rng rng(8);
  for (unsigned k : {1u, 63u, 64u, 127u, 200u}) {
    U256 a = rng.next_u256();
    U256 two_k;
    two_k.set_bit(k, true);
    U512 prod = mul_wide(a, two_k);
    // Reconstruct via 512-bit shift.
    U512 wide(a);
    U512 shifted = shl(wide, k);
    EXPECT_EQ(prod, shifted) << k;
  }
}

}  // namespace
}  // namespace fourq
