// Batch execution engine: compile-cache keying and persistence, the
// pre-decoded executor against the reference simulator, and the worker-pool
// engine against the software golden model.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "asic/romfile.hpp"
#include "asic/simulator.hpp"
#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "engine/batch.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"

namespace fourq {
namespace {

namespace fs = std::filesystem;

engine::CompileKey quick_key() {
  // No inversion: the shortest compilable single-SM program, so keying and
  // concurrency tests stay fast.
  engine::CompileKey key;
  key.kind = engine::ProgramKind::kSingleSm;
  key.trace.endo = trace::EndoVariant::kPaperCost;
  key.trace.include_inversion = false;
  return key;
}

engine::CompileKey functional_key() {
  engine::CompileKey key;
  key.kind = engine::ProgramKind::kSingleSm;
  key.trace.endo = trace::EndoVariant::kFunctional;
  return key;
}

std::string rom_text(const sched::CompiledSm& sm) {
  std::ostringstream os;
  asic::save_rom(sm, os);
  return os.str();
}

trace::InputBindings bindings_for(const engine::CompiledProgram& p, const curve::Affine& base) {
  trace::InputBindings b;
  b.emplace_back(p.in_zero, field::Fp2());
  b.emplace_back(p.in_one, field::Fp2::from_u64(1));
  b.emplace_back(p.in_two_d, curve::curve_2d());
  b.emplace_back(p.in_px, base.x);
  b.emplace_back(p.in_py, base.y);
  for (size_t i = 0; i < p.in_endo_consts.size(); ++i)
    b.emplace_back(p.in_endo_consts[i], field::Fp2::from_u64(3 + i, 7 + i));
  return b;
}

TEST(CompileCacheTest, KeyingAcrossBackendsAndConfigs) {
  engine::CompileCache cache;

  engine::CompileKey list_key = quick_key();
  engine::CompileKey seq_key = quick_key();
  seq_key.compile.solver = sched::Solver::kSequential;
  engine::CompileKey lat_key = quick_key();
  lat_key.compile.cfg.mul_latency = 4;

  EXPECT_FALSE(list_key == seq_key);
  EXPECT_FALSE(list_key == lat_key);
  EXPECT_NE(list_key.hash(), seq_key.hash());
  EXPECT_NE(list_key.hash(), lat_key.hash());

  auto p_list = cache.get_or_compile(list_key);
  auto p_seq = cache.get_or_compile(seq_key);
  auto p_lat = cache.get_or_compile(lat_key);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // The three configurations really compiled different artifacts.
  EXPECT_GT(p_seq->sm.cycles(), p_list->sm.cycles());  // no-ILP baseline is slower
  EXPECT_NE(rom_text(p_list->sm), rom_text(p_lat->sm));

  // Same key: served from memory, same object.
  auto p_again = cache.get_or_compile(list_key);
  EXPECT_EQ(p_again.get(), p_list.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(CompileCacheTest, DiskRoundTripBitForBit) {
  fs::path dir = fs::temp_directory_path() / "fourq_engine_cache_test";
  fs::remove_all(dir);

  engine::CompileKey key = quick_key();
  std::string mem_rom;
  {
    engine::CompileCache cold(dir.string());
    auto p = cold.get_or_compile(key);
    EXPECT_FALSE(p->loaded_from_disk);
    EXPECT_EQ(cold.stats().misses, 1u);
    mem_rom = rom_text(p->sm);
    EXPECT_TRUE(fs::exists(dir / ("rom-" + key.hash_hex() + ".txt")));
  }
  {
    // A fresh cache (fresh process, as far as the cache can tell) loads the
    // ROM instead of solving, and the bytes agree exactly.
    engine::CompileCache warm(dir.string());
    auto p = warm.get_or_compile(key);
    EXPECT_TRUE(p->loaded_from_disk);
    EXPECT_EQ(warm.stats().disk_hits, 1u);
    EXPECT_EQ(warm.stats().misses, 0u);
    EXPECT_EQ(rom_text(p->sm), mem_rom);
    // Input-op ids come from the (deterministic) trace rebuild.
    EXPECT_GE(p->in_px, 0);
    EXPECT_GE(p->in_py, 0);
  }
  fs::remove_all(dir);
}

TEST(CompileCacheTest, ConcurrentGetOrCompileCompilesOnce) {
  engine::CompileCache cache;
  engine::CompileKey key = quick_key();

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const engine::CompiledProgram>> got(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] { got[static_cast<size_t>(i)] = cache.get_or_compile(key); });
  for (auto& t : threads) t.join();

  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(got[static_cast<size_t>(i)].get(), got[0].get());
  engine::CompileCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses + s.disk_hits, 1u);
  EXPECT_EQ(s.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(DecodedTest, MatchesReferenceSimulator) {
  auto prog = engine::CompileCache().get_or_compile(functional_key());

  Rng rng(7);
  curve::Affine base = curve::deterministic_point(2);
  trace::InputBindings bindings = bindings_for(*prog, base);

  curve::Decomposition dec = curve::decompose(rng.next_u256());
  curve::RecodedScalar rec = curve::recode(dec.a);
  trace::EvalContext ctx;
  ctx.recoded = &rec;
  ctx.k_was_even = dec.k_was_even;

  asic::SimResult ref = asic::simulate(prog->sm, bindings, ctx);

  engine::DecodedRom rom = engine::decode(prog->sm);
  engine::SimWorkspace ws;
  engine::run(rom, bindings, ctx, ws);

  EXPECT_TRUE(engine::output_value(rom, ws, "x") == ref.outputs.at("x"));
  EXPECT_TRUE(engine::output_value(rom, ws, "y") == ref.outputs.at("y"));
  // The decoded stats are derived statically from the control stream; they
  // must equal what the interpreter counts dynamically.
  EXPECT_EQ(rom.stats, ref.stats);
}

TEST(DecodedTest, WorkspaceReuseAcrossJobsIsClean) {
  auto prog = engine::CompileCache().get_or_compile(functional_key());
  engine::DecodedRom rom = engine::decode(prog->sm);
  engine::SimWorkspace ws;
  curve::Affine base = curve::deterministic_point(1);
  trace::InputBindings bindings = bindings_for(*prog, base);

  Rng rng(99);
  for (int i = 0; i < 3; ++i) {
    curve::Decomposition dec = curve::decompose(rng.next_u256());
    curve::RecodedScalar rec = curve::recode(dec.a);
    trace::EvalContext ctx;
    ctx.recoded = &rec;
    ctx.k_was_even = dec.k_was_even;
    engine::run(rom, bindings, ctx, ws);  // same ws every time
    asic::SimResult ref = asic::simulate(prog->sm, bindings, ctx);
    EXPECT_TRUE(engine::output_value(rom, ws, "x") == ref.outputs.at("x")) << "job " << i;
    EXPECT_TRUE(engine::output_value(rom, ws, "y") == ref.outputs.at("y")) << "job " << i;
  }
}

TEST(BatchEngineTest, MatchesGoldenScalarMulAcross1kScalars) {
  engine::CompileCache cache;
  engine::EngineOptions opt;
  opt.workers = 4;
  opt.key = functional_key();
  opt.cache = &cache;
  engine::BatchEngine eng(opt);

  constexpr int kJobs = 1000;
  Rng rng(20260806);
  std::vector<engine::SmJob> jobs(kJobs);
  for (int i = 0; i < kJobs; ++i)
    jobs[static_cast<size_t>(i)] =
        engine::SmJob{rng.next_u256(), curve::deterministic_point(1 + i % 5)};

  std::vector<engine::SmResult> results = eng.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());

  int mismatches = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    curve::Affine sw = curve::to_affine(curve::scalar_mul(jobs[i].k, jobs[i].base));
    if (!(results[i].out.x == sw.x) || !(results[i].out.y == sw.y)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(cache.stats().misses, 1u);  // one compile served the whole batch
}

TEST(BatchEngineTest, RepeatedRunsReuseTheProgram) {
  engine::CompileCache cache;
  engine::EngineOptions opt;
  opt.workers = 2;
  opt.key = functional_key();
  opt.cache = &cache;
  engine::BatchEngine eng(opt);

  Rng rng(5);
  std::vector<engine::SmJob> jobs(8);
  for (auto& j : jobs) j = engine::SmJob{rng.next_u256(), curve::deterministic_point(1)};

  std::vector<engine::SmResult> a = eng.run(jobs);
  std::vector<engine::SmResult> b = eng.run(jobs);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].out.x == b[i].out.x);
    EXPECT_TRUE(a[i].out.y == b[i].out.y);
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(eng.program().sm.cycles(), a.front().stats.cycles);
}

TEST(BatchEngineTest, VerifyRejectsExactlyTheCorruptedIndices) {
  dsa::SchnorrQ scheme;
  Rng rng(123);

  constexpr int kSigs = 24;
  const std::vector<size_t> corrupted = {3, 11, 17, 23};
  std::vector<dsa::SchnorrQ::BatchItem> items;
  for (int i = 0; i < kSigs; ++i) {
    dsa::SchnorrQ::KeyPair kp = scheme.keygen(rng);
    std::string msg = "engine verify test " + std::to_string(i);
    items.push_back({kp.pub, msg, scheme.sign(kp, msg)});
  }
  for (size_t idx : corrupted) items[idx].msg += " tampered";

  engine::EngineOptions opt;
  opt.workers = 3;
  opt.chunk = 6;
  engine::BatchEngine eng(opt);
  std::vector<uint8_t> verdicts = eng.verify(items);

  ASSERT_EQ(verdicts.size(), items.size());
  for (size_t i = 0; i < verdicts.size(); ++i) {
    bool bad = std::find(corrupted.begin(), corrupted.end(), i) != corrupted.end();
    EXPECT_EQ(verdicts[i], bad ? 0 : 1) << "index " << i;
  }
}

TEST(BatchEngineTest, AllValidBatchPasses) {
  dsa::SchnorrQ scheme;
  Rng rng(321);
  std::vector<dsa::SchnorrQ::BatchItem> items;
  for (int i = 0; i < 8; ++i) {
    dsa::SchnorrQ::KeyPair kp = scheme.keygen(rng);
    std::string msg = "all valid " + std::to_string(i);
    items.push_back({kp.pub, msg, scheme.sign(kp, msg)});
  }
  engine::EngineOptions opt;
  opt.workers = 2;
  engine::BatchEngine eng(opt);
  std::vector<uint8_t> verdicts = eng.verify(items);
  for (size_t i = 0; i < verdicts.size(); ++i) EXPECT_EQ(verdicts[i], 1u) << "index " << i;
}

TEST(BatchEngineTest, ParallelForCoversEveryIndexOnceIncludingNested) {
  engine::EngineOptions opt;
  opt.workers = 4;
  engine::BatchEngine eng(opt);

  std::vector<std::atomic<int>> hits(257);
  eng.parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;

  // Nested fan-out from inside a fan-out body: the inner caller self-drains,
  // so this must complete even when every worker is already occupied.
  std::atomic<int> inner_total{0};
  eng.parallel_for(8, [&](size_t) {
    eng.parallel_for(16, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);

  eng.parallel_for(0, [](size_t) { FAIL() << "body must not run for n=0"; });
}

TEST(BatchEngineTest, VerifyBisectionHoldsAcrossMsmBackends) {
  // Corrupted-index isolation must survive the backend choice and the
  // nested MSM fan-out that multi-worker verification triggers.
  dsa::SchnorrQ scheme;
  Rng rng(456);
  constexpr int kSigs = 32;
  const std::vector<size_t> corrupted = {0, 13, 31};
  std::vector<dsa::SchnorrQ::BatchItem> items;
  for (int i = 0; i < kSigs; ++i) {
    dsa::SchnorrQ::KeyPair kp = scheme.keygen(rng);
    std::string msg = "backend bisection " + std::to_string(i);
    items.push_back({kp.pub, msg, scheme.sign(kp, msg)});
  }
  for (size_t idx : corrupted) items[idx].msg += " tampered";

  using curve::MsmBackend;
  for (MsmBackend b : {MsmBackend::kAuto, MsmBackend::kStraus, MsmBackend::kPippenger}) {
    engine::EngineOptions opt;
    opt.workers = 4;
    opt.msm.backend = b;
    engine::BatchEngine eng(opt);
    std::vector<uint8_t> verdicts = eng.verify(items);
    ASSERT_EQ(verdicts.size(), items.size());
    for (size_t i = 0; i < verdicts.size(); ++i) {
      bool bad = std::find(corrupted.begin(), corrupted.end(), i) != corrupted.end();
      EXPECT_EQ(verdicts[i], bad ? 0 : 1)
          << "index " << i << " backend " << curve::msm_backend_name(b);
    }
  }
}

TEST(BatchEngineTest, EmptyBatchesAreNoOps) {
  engine::EngineOptions opt;
  opt.key = functional_key();
  engine::CompileCache cache;
  opt.cache = &cache;
  engine::BatchEngine eng(opt);
  EXPECT_TRUE(eng.run({}).empty());
  EXPECT_TRUE(eng.verify({}).empty());
  EXPECT_EQ(cache.stats().misses, 0u);  // nothing compiled for empty work
}

TEST(BatchEngineTest, RejectsUnrunnableProgramKinds) {
  engine::CompileKey key = functional_key();
  key.kind = engine::ProgramKind::kDualSm;
  engine::EngineOptions opt;
  opt.key = key;
  engine::CompileCache cache;
  opt.cache = &cache;
  engine::BatchEngine eng(opt);
  std::vector<engine::SmJob> jobs(1, engine::SmJob{U256(5), curve::deterministic_point(1)});
  EXPECT_THROW(eng.run(jobs), std::logic_error);
}

// ---------------------------------------------------------------------------
// Lifecycle telemetry: the engine's queue/worker instrumentation must account
// for every task exactly once.

TEST(BatchEngineTest, LifecycleMetricsAccountForEveryTask) {
  if (!obs::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  obs::global().reset();
  obs::Registry& reg = obs::global().metrics;

  constexpr int kWorkers = 4;
  constexpr int kJobs = 32;
  engine::CompileCache cache;
  engine::EngineOptions opt;
  opt.workers = kWorkers;
  opt.chunk = 1;  // one task per job, so task counts are exact
  opt.key = functional_key();  // run() needs the full program (affine outputs)
  opt.cache = &cache;
  std::vector<engine::SmJob> jobs(kJobs,
                                  engine::SmJob{U256(7), curve::deterministic_point(1)});
  {
    engine::BatchEngine eng(opt);
    eng.run(jobs);
  }

  // Every sm task passed through both lifecycle histograms exactly once.
  obs::HistogramStats wait =
      reg.latency_histogram("engine.queue.wait_us", {{"kind", "sm"}}).stats();
  obs::HistogramStats svc =
      reg.latency_histogram("engine.job.service_us", {{"kind", "sm"}}).stats();
  EXPECT_EQ(wait.count, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(svc.count, static_cast<uint64_t>(kJobs));
  EXPECT_GT(svc.sum, 0.0);
  EXPECT_LE(svc.quantile(0.5), svc.quantile(0.99));

  // Per-worker counters partition the same tasks, and utilisation is a
  // fraction.
  uint64_t tasks = 0;
  for (int w = 0; w < kWorkers; ++w) {
    obs::Labels wl{{"worker", std::to_string(w)}};
    tasks += reg.counter("engine.worker.tasks", wl).value();
    double util = reg.gauge("engine.worker.utilisation", wl).value();
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0);
  }
  EXPECT_EQ(tasks, static_cast<uint64_t>(kJobs));

  // The queue drained fully and recorded a real high-water mark.
  EXPECT_DOUBLE_EQ(reg.gauge("engine.queue.depth").value(), 0.0);
  EXPECT_GE(reg.gauge("engine.queue.depth.max").value(), 1.0);

  // Worker task completions landed in the flight recorder (bounded memory).
  bool saw_task = false;
  for (const obs::FlightRecorder::Event& e : obs::global().flight.snapshot())
    if (e.kind == obs::FlightKind::kTask && e.name == "engine.task.sm") saw_task = true;
  EXPECT_TRUE(saw_task);
}

TEST(BatchEngineTest, BackpressureStallsAreCounted) {
  if (!obs::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  obs::global().reset();
  obs::Registry& reg = obs::global().metrics;

  // One slow worker behind a 2-slot ring: the producer must block while
  // enqueueing 64 single-job tasks.
  engine::CompileCache cache;
  engine::EngineOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 2;
  opt.chunk = 1;
  opt.key = functional_key();
  opt.cache = &cache;
  std::vector<engine::SmJob> jobs(64, engine::SmJob{U256(9), curve::deterministic_point(2)});
  {
    engine::BatchEngine eng(opt);
    eng.run(jobs);
  }
  EXPECT_GT(reg.counter("engine.queue.backpressure.stalls").value(), 0u);
  EXPECT_GT(reg.counter("engine.queue.backpressure.wait_us").value(), 0u);
}

TEST(BatchEngineTest, TeardownLoopLeavesNoSpanOrphans) {
  if (!obs::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  obs::global().reset();
  obs::SpanTracer& spans = obs::global().spans;
  {
    obs::ScopedSpan anchor(spans, "test.anchor");
  }
  const size_t base_threads = spans.tracked_threads();

  // Pools shrink and regrow across engine lifetimes; each cycle creates and
  // joins fresh worker threads while the calling thread traces engine.run
  // spans. No bookkeeping may accumulate.
  engine::CompileCache cache;
  std::vector<engine::SmJob> jobs(8, engine::SmJob{U256(3), curve::deterministic_point(1)});
  for (int round = 0; round < 4; ++round) {
    engine::EngineOptions opt;
    opt.workers = 2 + round;
    opt.key = functional_key();
    opt.cache = &cache;
    engine::BatchEngine eng(opt);
    eng.run(jobs);
  }
  EXPECT_EQ(spans.tracked_threads(), base_threads);
  EXPECT_EQ(spans.open_stacks(), 0u);
  EXPECT_EQ(spans.count("engine.run"), 4u);
  EXPECT_EQ(spans.abandoned_spans(), 0u);
}

}  // namespace
}  // namespace fourq
