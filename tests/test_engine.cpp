// Batch execution engine: compile-cache keying and persistence, the
// pre-decoded executor against the reference simulator, and the worker-pool
// engine against the software golden model.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "asic/romfile.hpp"
#include "asic/simulator.hpp"
#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "engine/batch.hpp"

namespace fourq {
namespace {

namespace fs = std::filesystem;

engine::CompileKey quick_key() {
  // No inversion: the shortest compilable single-SM program, so keying and
  // concurrency tests stay fast.
  engine::CompileKey key;
  key.kind = engine::ProgramKind::kSingleSm;
  key.trace.endo = trace::EndoVariant::kPaperCost;
  key.trace.include_inversion = false;
  return key;
}

engine::CompileKey functional_key() {
  engine::CompileKey key;
  key.kind = engine::ProgramKind::kSingleSm;
  key.trace.endo = trace::EndoVariant::kFunctional;
  return key;
}

std::string rom_text(const sched::CompiledSm& sm) {
  std::ostringstream os;
  asic::save_rom(sm, os);
  return os.str();
}

trace::InputBindings bindings_for(const engine::CompiledProgram& p, const curve::Affine& base) {
  trace::InputBindings b;
  b.emplace_back(p.in_zero, field::Fp2());
  b.emplace_back(p.in_one, field::Fp2::from_u64(1));
  b.emplace_back(p.in_two_d, curve::curve_2d());
  b.emplace_back(p.in_px, base.x);
  b.emplace_back(p.in_py, base.y);
  for (size_t i = 0; i < p.in_endo_consts.size(); ++i)
    b.emplace_back(p.in_endo_consts[i], field::Fp2::from_u64(3 + i, 7 + i));
  return b;
}

TEST(CompileCacheTest, KeyingAcrossBackendsAndConfigs) {
  engine::CompileCache cache;

  engine::CompileKey list_key = quick_key();
  engine::CompileKey seq_key = quick_key();
  seq_key.compile.solver = sched::Solver::kSequential;
  engine::CompileKey lat_key = quick_key();
  lat_key.compile.cfg.mul_latency = 4;

  EXPECT_FALSE(list_key == seq_key);
  EXPECT_FALSE(list_key == lat_key);
  EXPECT_NE(list_key.hash(), seq_key.hash());
  EXPECT_NE(list_key.hash(), lat_key.hash());

  auto p_list = cache.get_or_compile(list_key);
  auto p_seq = cache.get_or_compile(seq_key);
  auto p_lat = cache.get_or_compile(lat_key);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // The three configurations really compiled different artifacts.
  EXPECT_GT(p_seq->sm.cycles(), p_list->sm.cycles());  // no-ILP baseline is slower
  EXPECT_NE(rom_text(p_list->sm), rom_text(p_lat->sm));

  // Same key: served from memory, same object.
  auto p_again = cache.get_or_compile(list_key);
  EXPECT_EQ(p_again.get(), p_list.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(CompileCacheTest, DiskRoundTripBitForBit) {
  fs::path dir = fs::temp_directory_path() / "fourq_engine_cache_test";
  fs::remove_all(dir);

  engine::CompileKey key = quick_key();
  std::string mem_rom;
  {
    engine::CompileCache cold(dir.string());
    auto p = cold.get_or_compile(key);
    EXPECT_FALSE(p->loaded_from_disk);
    EXPECT_EQ(cold.stats().misses, 1u);
    mem_rom = rom_text(p->sm);
    EXPECT_TRUE(fs::exists(dir / ("rom-" + key.hash_hex() + ".txt")));
  }
  {
    // A fresh cache (fresh process, as far as the cache can tell) loads the
    // ROM instead of solving, and the bytes agree exactly.
    engine::CompileCache warm(dir.string());
    auto p = warm.get_or_compile(key);
    EXPECT_TRUE(p->loaded_from_disk);
    EXPECT_EQ(warm.stats().disk_hits, 1u);
    EXPECT_EQ(warm.stats().misses, 0u);
    EXPECT_EQ(rom_text(p->sm), mem_rom);
    // Input-op ids come from the (deterministic) trace rebuild.
    EXPECT_GE(p->in_px, 0);
    EXPECT_GE(p->in_py, 0);
  }
  fs::remove_all(dir);
}

TEST(CompileCacheTest, ConcurrentGetOrCompileCompilesOnce) {
  engine::CompileCache cache;
  engine::CompileKey key = quick_key();

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const engine::CompiledProgram>> got(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] { got[static_cast<size_t>(i)] = cache.get_or_compile(key); });
  for (auto& t : threads) t.join();

  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(got[static_cast<size_t>(i)].get(), got[0].get());
  engine::CompileCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses + s.disk_hits, 1u);
  EXPECT_EQ(s.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(DecodedTest, MatchesReferenceSimulator) {
  auto prog = engine::CompileCache().get_or_compile(functional_key());

  Rng rng(7);
  curve::Affine base = curve::deterministic_point(2);
  trace::InputBindings bindings = bindings_for(*prog, base);

  curve::Decomposition dec = curve::decompose(rng.next_u256());
  curve::RecodedScalar rec = curve::recode(dec.a);
  trace::EvalContext ctx;
  ctx.recoded = &rec;
  ctx.k_was_even = dec.k_was_even;

  asic::SimResult ref = asic::simulate(prog->sm, bindings, ctx);

  engine::DecodedRom rom = engine::decode(prog->sm);
  engine::SimWorkspace ws;
  engine::run(rom, bindings, ctx, ws);

  EXPECT_TRUE(engine::output_value(rom, ws, "x") == ref.outputs.at("x"));
  EXPECT_TRUE(engine::output_value(rom, ws, "y") == ref.outputs.at("y"));
  // The decoded stats are derived statically from the control stream; they
  // must equal what the interpreter counts dynamically.
  EXPECT_EQ(rom.stats, ref.stats);
}

TEST(DecodedTest, WorkspaceReuseAcrossJobsIsClean) {
  auto prog = engine::CompileCache().get_or_compile(functional_key());
  engine::DecodedRom rom = engine::decode(prog->sm);
  engine::SimWorkspace ws;
  curve::Affine base = curve::deterministic_point(1);
  trace::InputBindings bindings = bindings_for(*prog, base);

  Rng rng(99);
  for (int i = 0; i < 3; ++i) {
    curve::Decomposition dec = curve::decompose(rng.next_u256());
    curve::RecodedScalar rec = curve::recode(dec.a);
    trace::EvalContext ctx;
    ctx.recoded = &rec;
    ctx.k_was_even = dec.k_was_even;
    engine::run(rom, bindings, ctx, ws);  // same ws every time
    asic::SimResult ref = asic::simulate(prog->sm, bindings, ctx);
    EXPECT_TRUE(engine::output_value(rom, ws, "x") == ref.outputs.at("x")) << "job " << i;
    EXPECT_TRUE(engine::output_value(rom, ws, "y") == ref.outputs.at("y")) << "job " << i;
  }
}

TEST(BatchEngineTest, MatchesGoldenScalarMulAcross1kScalars) {
  engine::CompileCache cache;
  engine::EngineOptions opt;
  opt.workers = 4;
  opt.key = functional_key();
  opt.cache = &cache;
  engine::BatchEngine eng(opt);

  constexpr int kJobs = 1000;
  Rng rng(20260806);
  std::vector<engine::SmJob> jobs(kJobs);
  for (int i = 0; i < kJobs; ++i)
    jobs[static_cast<size_t>(i)] =
        engine::SmJob{rng.next_u256(), curve::deterministic_point(1 + i % 5)};

  std::vector<engine::SmResult> results = eng.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());

  int mismatches = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    curve::Affine sw = curve::to_affine(curve::scalar_mul(jobs[i].k, jobs[i].base));
    if (!(results[i].out.x == sw.x) || !(results[i].out.y == sw.y)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(cache.stats().misses, 1u);  // one compile served the whole batch
}

TEST(BatchEngineTest, RepeatedRunsReuseTheProgram) {
  engine::CompileCache cache;
  engine::EngineOptions opt;
  opt.workers = 2;
  opt.key = functional_key();
  opt.cache = &cache;
  engine::BatchEngine eng(opt);

  Rng rng(5);
  std::vector<engine::SmJob> jobs(8);
  for (auto& j : jobs) j = engine::SmJob{rng.next_u256(), curve::deterministic_point(1)};

  std::vector<engine::SmResult> a = eng.run(jobs);
  std::vector<engine::SmResult> b = eng.run(jobs);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].out.x == b[i].out.x);
    EXPECT_TRUE(a[i].out.y == b[i].out.y);
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(eng.program().sm.cycles(), a.front().stats.cycles);
}

TEST(BatchEngineTest, VerifyRejectsExactlyTheCorruptedIndices) {
  dsa::SchnorrQ scheme;
  Rng rng(123);

  constexpr int kSigs = 24;
  const std::vector<size_t> corrupted = {3, 11, 17, 23};
  std::vector<dsa::SchnorrQ::BatchItem> items;
  for (int i = 0; i < kSigs; ++i) {
    dsa::SchnorrQ::KeyPair kp = scheme.keygen(rng);
    std::string msg = "engine verify test " + std::to_string(i);
    items.push_back({kp.pub, msg, scheme.sign(kp, msg)});
  }
  for (size_t idx : corrupted) items[idx].msg += " tampered";

  engine::EngineOptions opt;
  opt.workers = 3;
  opt.chunk = 6;
  engine::BatchEngine eng(opt);
  std::vector<uint8_t> verdicts = eng.verify(items);

  ASSERT_EQ(verdicts.size(), items.size());
  for (size_t i = 0; i < verdicts.size(); ++i) {
    bool bad = std::find(corrupted.begin(), corrupted.end(), i) != corrupted.end();
    EXPECT_EQ(verdicts[i], bad ? 0 : 1) << "index " << i;
  }
}

TEST(BatchEngineTest, AllValidBatchPasses) {
  dsa::SchnorrQ scheme;
  Rng rng(321);
  std::vector<dsa::SchnorrQ::BatchItem> items;
  for (int i = 0; i < 8; ++i) {
    dsa::SchnorrQ::KeyPair kp = scheme.keygen(rng);
    std::string msg = "all valid " + std::to_string(i);
    items.push_back({kp.pub, msg, scheme.sign(kp, msg)});
  }
  engine::EngineOptions opt;
  opt.workers = 2;
  engine::BatchEngine eng(opt);
  std::vector<uint8_t> verdicts = eng.verify(items);
  for (size_t i = 0; i < verdicts.size(); ++i) EXPECT_EQ(verdicts[i], 1u) << "index " << i;
}

TEST(BatchEngineTest, ParallelForCoversEveryIndexOnceIncludingNested) {
  engine::EngineOptions opt;
  opt.workers = 4;
  engine::BatchEngine eng(opt);

  std::vector<std::atomic<int>> hits(257);
  eng.parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;

  // Nested fan-out from inside a fan-out body: the inner caller self-drains,
  // so this must complete even when every worker is already occupied.
  std::atomic<int> inner_total{0};
  eng.parallel_for(8, [&](size_t) {
    eng.parallel_for(16, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);

  eng.parallel_for(0, [](size_t) { FAIL() << "body must not run for n=0"; });
}

TEST(BatchEngineTest, VerifyBisectionHoldsAcrossMsmBackends) {
  // Corrupted-index isolation must survive the backend choice and the
  // nested MSM fan-out that multi-worker verification triggers.
  dsa::SchnorrQ scheme;
  Rng rng(456);
  constexpr int kSigs = 32;
  const std::vector<size_t> corrupted = {0, 13, 31};
  std::vector<dsa::SchnorrQ::BatchItem> items;
  for (int i = 0; i < kSigs; ++i) {
    dsa::SchnorrQ::KeyPair kp = scheme.keygen(rng);
    std::string msg = "backend bisection " + std::to_string(i);
    items.push_back({kp.pub, msg, scheme.sign(kp, msg)});
  }
  for (size_t idx : corrupted) items[idx].msg += " tampered";

  using curve::MsmBackend;
  for (MsmBackend b : {MsmBackend::kAuto, MsmBackend::kStraus, MsmBackend::kPippenger}) {
    engine::EngineOptions opt;
    opt.workers = 4;
    opt.msm.backend = b;
    engine::BatchEngine eng(opt);
    std::vector<uint8_t> verdicts = eng.verify(items);
    ASSERT_EQ(verdicts.size(), items.size());
    for (size_t i = 0; i < verdicts.size(); ++i) {
      bool bad = std::find(corrupted.begin(), corrupted.end(), i) != corrupted.end();
      EXPECT_EQ(verdicts[i], bad ? 0 : 1)
          << "index " << i << " backend " << curve::msm_backend_name(b);
    }
  }
}

TEST(BatchEngineTest, EmptyBatchesAreNoOps) {
  engine::EngineOptions opt;
  opt.key = functional_key();
  engine::CompileCache cache;
  opt.cache = &cache;
  engine::BatchEngine eng(opt);
  EXPECT_TRUE(eng.run({}).empty());
  EXPECT_TRUE(eng.verify({}).empty());
  EXPECT_EQ(cache.stats().misses, 0u);  // nothing compiled for empty work
}

TEST(BatchEngineTest, RejectsUnrunnableProgramKinds) {
  engine::CompileKey key = functional_key();
  key.kind = engine::ProgramKind::kDualSm;
  engine::EngineOptions opt;
  opt.key = key;
  engine::CompileCache cache;
  opt.cache = &cache;
  engine::BatchEngine eng(opt);
  std::vector<engine::SmJob> jobs(1, engine::SmJob{U256(5), curve::deterministic_point(1)});
  EXPECT_THROW(eng.run(jobs), std::logic_error);
}

}  // namespace
}  // namespace fourq
