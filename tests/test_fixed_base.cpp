// Tests for cached fixed-base scalar multiplication.
#include "curve/fixed_base.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fourq::curve {
namespace {

TEST(FixedBase, MatchesOneShotScalarMul) {
  Affine p = deterministic_point(51);
  FixedBaseMul fb(p);
  Rng rng(601);
  for (int i = 0; i < 12; ++i) {
    U256 k = rng.next_u256();
    EXPECT_TRUE(equal(fb.mul(k), scalar_mul(k, p))) << k.to_hex();
  }
}

TEST(FixedBase, EvenAndBoundaryScalars) {
  Affine p = deterministic_point(52);
  FixedBaseMul fb(p);
  const U256 cases[] = {
      U256(),
      U256(1),
      U256(2),
      U256(~0ull, ~0ull, ~0ull, ~0ull),
      U256(0, 1, 0, 0),
      U256(0, 0, 0, 1),
  };
  for (const U256& k : cases)
    EXPECT_TRUE(equal(fb.mul(k), scalar_mul_reference(k, p))) << k.to_hex();
}

TEST(FixedBase, ReusableAcrossManyScalars) {
  Affine p = deterministic_point(53);
  FixedBaseMul fb(p);
  // Sum of [i]P over i = 1..20 equals [210]P.
  PointR1 acc = identity();
  for (uint64_t i = 1; i <= 20; ++i) acc = add(acc, to_r2(fb.mul(U256(i))));
  EXPECT_TRUE(equal(acc, fb.mul(U256(210))));
}

TEST(FixedBase, PerScalarOpCounts) {
  auto c = FixedBaseMul::per_scalar_op_counts();
  EXPECT_EQ(c.doublings, 64);
  EXPECT_EQ(c.additions, 66);
  // Amortised cost drops the 192 precomputation doublings of the one-shot
  // path.
  EXPECT_LT(c.doublings, scalar_mul_op_counts().doublings);
}

TEST(FixedBase, BaseAccessor) {
  Affine p = deterministic_point(54);
  FixedBaseMul fb(p);
  EXPECT_EQ(fb.base().x, p.x);
  EXPECT_EQ(fb.base().y, p.y);
}

}  // namespace
}  // namespace fourq::curve
