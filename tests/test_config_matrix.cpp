// Property suite over the machine-configuration space: for every
// configuration in the sweep, the solver schedule must validate, compile,
// and execute on the cycle-accurate datapath with bit-exact agreement
// against the trace interpreter. This is the parameterised "does the whole
// flow hold up under any datapath shape?" test.
#include <gtest/gtest.h>

#include <tuple>

#include "asic/simulator.hpp"
#include "curve/scalarmul.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace fourq {
namespace {

using curve::Fp2;

// (mul_latency, read_ports, forwarding, num_multipliers)
using Config = std::tuple<int, int, bool, int>;

class ConfigMatrix : public ::testing::TestWithParam<Config> {
 protected:
  sched::MachineConfig make_cfg() const {
    auto [lat, ports, fwd, muls] = GetParam();
    sched::MachineConfig cfg;
    cfg.mul_latency = lat;
    cfg.rf_read_ports = ports;
    cfg.forwarding = fwd;
    cfg.num_multipliers = muls;
    if (muls > 1) {
      cfg.rf_write_ports = 1 + muls;
      cfg.num_addsubs = 2;
    }
    return cfg;
  }
};

TEST_P(ConfigMatrix, LoopBodySchedulesAndValidates) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::Problem pr = sched::build_problem(body.program, make_cfg());
  sched::Schedule s = sched::list_schedule(pr);
  sched::require_valid(pr, s);
  EXPECT_GE(s.makespan, pr.critical_path() + 1);
}

TEST_P(ConfigMatrix, LoopBodySimulatesBitExact) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileOptions copt;
  copt.cfg = make_cfg();
  sched::CompileResult r = sched::compile_program(body.program, copt);

  curve::PointR1 q = curve::dbl(curve::to_r1(curve::deterministic_point(81)));
  curve::PointR2 e = curve::to_r2(curve::to_r1(curve::deterministic_point(82)));
  trace::InputBindings b;
  b.emplace_back(body.q_inputs[0], q.X);
  b.emplace_back(body.q_inputs[1], q.Y);
  b.emplace_back(body.q_inputs[2], q.Z);
  b.emplace_back(body.q_inputs[3], q.Ta);
  b.emplace_back(body.q_inputs[4], q.Tb);
  b.emplace_back(body.table_inputs[0], e.xpy);
  b.emplace_back(body.table_inputs[1], e.ymx);
  b.emplace_back(body.table_inputs[2], e.z2);
  b.emplace_back(body.table_inputs[3], e.dt2);

  asic::SimResult sim = asic::simulate(r.sm, b, trace::EvalContext{});
  auto ref = trace::evaluate(body.program, b, trace::EvalContext{});
  for (const char* name : {"Qx", "Qy", "Qz", "Ta", "Tb"})
    EXPECT_EQ(sim.outputs.at(name), ref.at(name)) << name;
}

TEST_P(ConfigMatrix, SequentialSolverAlsoHolds) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileOptions copt;
  copt.cfg = make_cfg();
  copt.solver = sched::Solver::kSequential;
  sched::CompileResult r = sched::compile_program(body.program, copt);
  sched::require_valid(r.problem, r.schedule);
  // Sequential is never faster than the list schedule.
  sched::CompileOptions lopt;
  lopt.cfg = make_cfg();
  sched::CompileResult l = sched::compile_program(body.program, lopt);
  EXPECT_GE(r.schedule.makespan, l.schedule.makespan);
}

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  int lat = std::get<0>(info.param);
  int ports = std::get<1>(info.param);
  bool fwd = std::get<2>(info.param);
  int muls = std::get<3>(info.param);
  return "lat" + std::to_string(lat) + "_rp" + std::to_string(ports) +
         (fwd ? "_fwd" : "_nofwd") + "_m" + std::to_string(muls);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigMatrix,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),      // mul latency
                       ::testing::Values(2, 3, 4),         // read ports
                       ::testing::Bool(),                  // forwarding
                       ::testing::Values(1, 2)),           // multipliers
    config_name);

// Fixed-schedule property: the compiled ROM's issue pattern is identical
// for every scalar — only register addresses of indexed reads change. This
// is the architectural property that makes the FSM schedule sound (and is
// also what makes the design's timing scalar-independent).
TEST(FixedSchedule, CycleCountAndIssuePatternScalarIndependent) {
  trace::SmTraceOptions topt;
  topt.endo = trace::EndoVariant::kPaperCost;
  trace::SmTrace sm = trace::build_sm_trace(topt);
  sched::CompileResult r = sched::compile_program(sm.program, {});

  curve::Affine p = curve::deterministic_point(83);
  trace::InputBindings b;
  b.emplace_back(sm.in_zero, Fp2());
  b.emplace_back(sm.in_one, Fp2::from_u64(1));
  b.emplace_back(sm.in_two_d, curve::curve_2d());
  b.emplace_back(sm.in_px, p.x);
  b.emplace_back(sm.in_py, p.y);
  for (size_t i = 0; i < sm.in_endo_consts.size(); ++i)
    b.emplace_back(sm.in_endo_consts[i], Fp2::from_u64(31 + i, 37 + i));

  Rng rng(701);
  asic::SimStats first;
  bool have_first = false;
  for (int i = 0; i < 4; ++i) {
    U256 k = rng.next_u256();
    if (i == 1) k.set_bit(0, false);  // include an even scalar
    curve::Decomposition dec = curve::decompose(k);
    curve::RecodedScalar rec = curve::recode(dec.a);
    asic::SimResult res = asic::simulate(r.sm, b, trace::EvalContext{&rec, dec.k_was_even});
    if (!have_first) {
      first = res.stats;
      have_first = true;
    } else {
      EXPECT_EQ(res.stats.cycles, first.cycles);
      EXPECT_EQ(res.stats.mul_issues, first.mul_issues);
      EXPECT_EQ(res.stats.addsub_issues, first.addsub_issues);
      EXPECT_EQ(res.stats.rf_writes, first.rf_writes);
      EXPECT_EQ(res.stats.rf_reads, first.rf_reads);
      EXPECT_EQ(res.stats.forwarded_operands, first.forwarded_operands);
    }
  }
}

}  // namespace
}  // namespace fourq
