// Unit tests for F_p, p = 2^127 - 1 (paper §II-B.2).
#include "field/fp.hpp"

#include <gtest/gtest.h>

#include "common/modint.hpp"
#include "common/rng.hpp"

namespace fourq::field {
namespace {

// Reference modulus as U256 for cross-checks against the generic Monty path.
const U256 kP = U256::from_hex("7fffffffffffffffffffffffffffffff");

Fp rand_fp(Rng& rng) { return Fp::from_u256(rng.next_u256()); }

TEST(Fp, CanonicalZeroRepresentation) {
  // p itself must normalise to zero: 2^127 - 1 ≡ 0.
  Fp p_val = Fp::from_words(~0ull, 0x7fffffffffffffffull);
  EXPECT_TRUE(p_val.is_zero());
  EXPECT_EQ(p_val, Fp());
  // 2^127 ≡ 1.
  Fp two127 = Fp::from_u256(U256(0, 0, 1, 0));  // 2^128 -> handled by reduce
  EXPECT_EQ(two127, Fp::from_u64(2));           // 2^128 = 2 * 2^127 ≡ 2
}

TEST(Fp, FromU256ReducesCorrectly) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    U256 v = rng.next_u256();
    Fp f = Fp::from_u256(v);
    U256 expect = mod(v, kP);
    EXPECT_EQ(f.to_u256(), expect);
  }
}

TEST(Fp, AddSubRoundTrip) {
  Rng rng(22);
  for (int i = 0; i < 200; ++i) {
    Fp a = rand_fp(rng), b = rand_fp(rng);
    EXPECT_EQ(a + b - b, a);
    EXPECT_EQ(a - a, Fp());
    EXPECT_EQ(a + (-a), Fp());
    EXPECT_EQ(-(-a), a);
  }
}

TEST(Fp, AddNearModulusBoundary) {
  Fp pm1 = Fp::from_words(~0ull - 1, 0x7fffffffffffffffull);  // p - 1
  EXPECT_EQ(pm1 + Fp::from_u64(1), Fp());
  EXPECT_EQ(pm1 + pm1, Fp() - Fp::from_u64(2));
  EXPECT_EQ(Fp() - Fp::from_u64(1), pm1);
}

TEST(Fp, MulMatchesGenericModularArithmetic) {
  Rng rng(23);
  Monty mt(kP);
  for (int i = 0; i < 300; ++i) {
    Fp a = rand_fp(rng), b = rand_fp(rng);
    U256 expect = mod(mul_wide(a.to_u256(), b.to_u256()), kP);
    EXPECT_EQ((a * b).to_u256(), expect);
  }
}

TEST(Fp, MulEdgeCases) {
  Fp pm1 = Fp() - Fp::from_u64(1);
  EXPECT_EQ(pm1 * pm1, Fp::from_u64(1));  // (-1)^2 = 1
  EXPECT_EQ(pm1 * Fp(), Fp());
  EXPECT_EQ(Fp::from_u64(1) * pm1, pm1);
  // (2^126)^2 = 2^252 ≡ 2^(252-127) = 2^125
  Fp two126 = Fp::from_words(0, uint64_t{1} << 62);
  Fp two125 = Fp::from_words(0, uint64_t{1} << 61);
  EXPECT_EQ(two126 * two126, two125 * Fp::from_u64(1));
}

TEST(Fp, RingAxioms) {
  Rng rng(24);
  for (int i = 0; i < 100; ++i) {
    Fp a = rand_fp(rng), b = rand_fp(rng), c = rand_fp(rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b * c), (a * b) * c);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * Fp::from_u64(1), a);
  }
}

TEST(Fp, InverseIsInverse) {
  Rng rng(25);
  for (int i = 0; i < 30; ++i) {
    Fp a = rand_fp(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inv(), Fp::from_u64(1));
  }
  EXPECT_EQ(Fp::from_u64(2) * Fp::from_u64(2).inv(), Fp::from_u64(1));
  EXPECT_THROW(Fp().inv(), std::logic_error);
}

TEST(Fp, FermatLittleTheorem) {
  Rng rng(26);
  U256 p_minus_1;
  sub(kP, U256(1), p_minus_1);
  for (int i = 0; i < 10; ++i) {
    Fp a = rand_fp(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a.pow(p_minus_1), Fp::from_u64(1));
  }
}

TEST(Fp, SqrtOfSquares) {
  Rng rng(27);
  for (int i = 0; i < 30; ++i) {
    Fp a = rand_fp(rng);
    Fp sq = a.sqr();
    Fp root;
    ASSERT_TRUE(sq.sqrt(root));
    EXPECT_TRUE(root == a || root == -a);
  }
}

TEST(Fp, NonResidueDetected) {
  // -1 is a non-residue mod p when p ≡ 3 (mod 4).
  Fp minus1 = -Fp::from_u64(1);
  Fp root;
  EXPECT_FALSE(minus1.sqrt(root));
}

TEST(Fp, SqrNMatchesRepeatedSqr) {
  Rng rng(28);
  Fp a = rand_fp(rng);
  Fp manual = a;
  for (int i = 0; i < 10; ++i) manual = manual.sqr();
  EXPECT_EQ(a.sqr_n(10), manual);
  EXPECT_EQ(a.sqr_n(0), a);
}

TEST(Fp, WideMulAndFoldAgreeWithOperator) {
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    Fp a = rand_fp(rng), b = rand_fp(rng);
    EXPECT_EQ(Fp::reduce_wide(Fp::mul_wide(a, b)), a * b);
  }
}

TEST(Fp, ReduceWideHandlesTopBits) {
  // v = 2^255 = C=2 contribution: 2^255 = 2*2^254 ≡ 2.
  U256 v;
  v.set_bit(255, true);
  EXPECT_EQ(Fp::reduce_wide(v), Fp::from_u64(2));
  // v = 2^254 ≡ 1.
  U256 u;
  u.set_bit(254, true);
  EXPECT_EQ(Fp::reduce_wide(u), Fp::from_u64(1));
  // v = 2^127 ≡ 1.
  U256 w;
  w.set_bit(127, true);
  EXPECT_EQ(Fp::reduce_wide(w), Fp::from_u64(1));
  // All-ones 256-bit value: (2^256 - 1) mod p. 2^256 ≡ 4 -> 3.
  U256 ones(~0ull, ~0ull, ~0ull, ~0ull);
  EXPECT_EQ(Fp::reduce_wide(ones), Fp::from_u64(3));
}

TEST(Fp, HexRoundTrip) {
  Fp a = Fp::from_hex("0123456789abcdef0123456789abcdef");
  EXPECT_EQ(Fp::from_hex(a.to_hex()), a);
  EXPECT_EQ(Fp::from_hex("1"), Fp::from_u64(1));
}

TEST(Fp, SqrMatchesMulBitwise) {
  // sqr() drops one 64x64 multiply vs the generic product but must stay
  // bit-identical to a*a — both reduce to the canonical representative.
  std::vector<Fp> edges = {
      Fp(),                                             // 0
      Fp::from_u64(1),
      Fp::from_u64(2),
      Fp::from_u64(~0ull),                              // one full low limb
      Fp::from_words(0, 1),                             // 2^64
      Fp::from_words(~0ull, 0x3fffffffffffffffull),     // 2^126 - 1
      Fp::from_words(~0ull - 1, 0x7fffffffffffffffull)  // p - 1
  };
  for (const Fp& a : edges) {
    EXPECT_EQ(a.sqr().to_u256(), (a * a).to_u256());
    EXPECT_EQ(Fp::sqr_wide(a), Fp::mul_wide(a, a));
  }
  Rng rng(32);
  for (int i = 0; i < 500; ++i) {
    Fp a = rand_fp(rng);
    EXPECT_EQ(a.sqr().to_u256(), (a * a).to_u256());
    // The unreduced double-width products must agree too, not just their
    // folded forms.
    EXPECT_EQ(Fp::sqr_wide(a), Fp::mul_wide(a, a));
    EXPECT_EQ(Fp::reduce_wide(Fp::sqr_wide(a)), a.sqr());
  }
}

TEST(Fp, MulWideMatchesMontyProduct) {
  // mul_wide's 4-multiply schoolbook against the generic Monty pipeline.
  Rng rng(33);
  Monty mt(kP);
  for (int i = 0; i < 200; ++i) {
    Fp a = rand_fp(rng), b = rand_fp(rng);
    U256 expect = mt.from_monty(mt.mul(mt.to_monty(a.to_u256()), mt.to_monty(b.to_u256())));
    EXPECT_EQ(Fp::reduce_wide(Fp::mul_wide(a, b)).to_u256(), expect);
  }
}

TEST(Fp, PowMatchesMonty) {
  Rng rng(30);
  Monty mt(kP);
  for (int i = 0; i < 20; ++i) {
    Fp a = rand_fp(rng);
    U256 e = rng.next_u256();
    U256 expect = mt.from_monty(mt.pow(mt.to_monty(a.to_u256()), e));
    EXPECT_EQ(a.pow(e).to_u256(), expect);
  }
}

}  // namespace
}  // namespace fourq::field
