// NIST P-256 baseline tests: domain-parameter sanity, group laws, and
// scalar-multiplication identities.
#include "baseline/p256.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fourq::baseline {
namespace {

class P256Test : public ::testing::Test {
 protected:
  P256 c;
  Rng rng{201};
};

TEST_F(P256Test, GeneratorOnCurve) { EXPECT_TRUE(c.on_curve(c.generator())); }

TEST_F(P256Test, GeneratorHasOrderN) {
  // [n]G == O validates both the remembered group order and the arithmetic.
  EXPECT_TRUE(c.is_infinity(c.scalar_mul_base(c.group_order())));
}

TEST_F(P256Test, NMinusOneGIsMinusG) {
  U256 nm1;
  sub(c.group_order(), U256(1), nm1);
  auto p = c.to_affine(c.scalar_mul_base(nm1));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->x, c.generator().x);
  // y must be the negation: y + Gy == p.
  EXPECT_EQ(addmod(p->y, c.generator().y, c.field_prime()), U256());
}

TEST_F(P256Test, AffineJacobianRoundTrip) {
  auto g2 = c.to_affine(c.dbl(c.to_jacobian(c.generator())));
  ASSERT_TRUE(g2.has_value());
  EXPECT_TRUE(c.on_curve(*g2));
  auto round = c.to_affine(c.to_jacobian(*g2));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, *g2);
}

TEST_F(P256Test, AdditionCommutes) {
  auto p = c.scalar_mul_base(U256(rng.next_u64()));
  auto q = c.scalar_mul_base(U256(rng.next_u64()));
  EXPECT_TRUE(c.equal(c.add(p, q), c.add(q, p)));
}

TEST_F(P256Test, AdditionAssociates) {
  auto p = c.scalar_mul_base(U256(3));
  auto q = c.scalar_mul_base(U256(5));
  auto r = c.scalar_mul_base(U256(7));
  EXPECT_TRUE(c.equal(c.add(c.add(p, q), r), c.add(p, c.add(q, r))));
}

TEST_F(P256Test, DoublingMatchesAddition) {
  auto p = c.scalar_mul_base(U256(rng.next_u64()));
  EXPECT_TRUE(c.equal(c.dbl(p), c.add(p, p)));
}

TEST_F(P256Test, InfinityIsNeutral) {
  auto p = c.scalar_mul_base(U256(42));
  EXPECT_TRUE(c.equal(c.add(p, c.infinity()), p));
  EXPECT_TRUE(c.equal(c.add(c.infinity(), p), p));
  EXPECT_TRUE(c.is_infinity(c.dbl(c.infinity())));
}

TEST_F(P256Test, PPlusMinusPIsInfinity) {
  auto p = c.to_affine(c.scalar_mul_base(U256(99)));
  ASSERT_TRUE(p.has_value());
  P256::Affine neg{p->x, submod(U256(), p->y, c.field_prime())};
  EXPECT_TRUE(c.on_curve(neg));
  EXPECT_TRUE(c.is_infinity(c.add(c.to_jacobian(*p), c.to_jacobian(neg))));
}

TEST_F(P256Test, ScalarMulDistributes) {
  U256 a(rng.next_u64()), b(rng.next_u64());
  U256 s;
  ASSERT_EQ(add(a, b, s), 0u);
  EXPECT_TRUE(c.equal(c.add(c.scalar_mul_base(a), c.scalar_mul_base(b)),
                      c.scalar_mul_base(s)));
}

TEST_F(P256Test, ScalarMulCommutesThroughPoints) {
  U256 a(rng.next_u64()), b(rng.next_u64());
  auto ag = c.to_affine(c.scalar_mul_base(a));
  auto bg = c.to_affine(c.scalar_mul_base(b));
  ASSERT_TRUE(ag && bg);
  EXPECT_TRUE(c.equal(c.scalar_mul(b, *ag), c.scalar_mul(a, *bg)));
}

TEST_F(P256Test, SmallScalarsByRepeatedAddition) {
  auto acc = c.infinity();
  auto g = c.to_jacobian(c.generator());
  for (uint64_t k = 0; k <= 10; ++k) {
    EXPECT_TRUE(c.equal(c.scalar_mul_base(U256(k)), acc)) << k;
    acc = c.add(acc, g);
  }
}

TEST_F(P256Test, ZeroScalarGivesInfinity) {
  EXPECT_TRUE(c.is_infinity(c.scalar_mul_base(U256())));
}

TEST_F(P256Test, OnCurveRejectsJunk) {
  P256::Affine junk{U256(1), U256(1)};
  EXPECT_FALSE(c.on_curve(junk));
  P256::Affine big{c.field_prime(), U256(1)};
  EXPECT_FALSE(c.on_curve(big));
}

TEST_F(P256Test, EqualDetectsDifferentPoints) {
  EXPECT_FALSE(c.equal(c.scalar_mul_base(U256(2)), c.scalar_mul_base(U256(3))));
  EXPECT_FALSE(c.equal(c.infinity(), c.scalar_mul_base(U256(2))));
}

}  // namespace
}  // namespace fourq::baseline
