// Scheduler tests: problem extraction, the three solvers, the independent
// validator, and register allocation (paper §III-C step 3).
#include "sched/compile.hpp"

#include <gtest/gtest.h>

#include "sched/validate.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::sched {
namespace {

trace::LoopBodyTrace body() { return trace::build_loop_body_trace(); }

TEST(Problem, LoopBodyShape) {
  auto b = body();
  Problem pr = build_problem(b.program, MachineConfig{});
  EXPECT_EQ(pr.nodes.size(), 27u);  // 15 muls + 12 add/subs
  EXPECT_GT(pr.critical_path(), 0);
  // Heights are monotone along dependencies.
  for (size_t i = 0; i < pr.nodes.size(); ++i)
    for (int c : pr.consumers[i]) EXPECT_GT(pr.height[i], pr.height[static_cast<size_t>(c)] - 100);
}

TEST(Scheduler, SequentialMatchesClosedForm) {
  auto b = body();
  MachineConfig cfg;
  Problem pr = build_problem(b.program, cfg);
  Schedule s = sequential_schedule(pr);
  require_valid(pr, s);
  // 15 muls * (Lm+1) + 12 addsubs * (La+1); fully serial.
  EXPECT_EQ(s.makespan, 15 * (cfg.mul_latency + 1) + 12 * (cfg.addsub_latency + 1));
}

TEST(Scheduler, ListBeatsSequential) {
  auto b = body();
  Problem pr = build_problem(b.program, MachineConfig{});
  Schedule seq = sequential_schedule(pr);
  Schedule lst = list_schedule(pr);
  require_valid(pr, lst);
  EXPECT_LT(lst.makespan, seq.makespan);
  EXPECT_GE(lst.makespan, pr.critical_path() + 1);
}

TEST(Scheduler, MobilityPriorityAlsoValid) {
  auto b = body();
  Problem pr = build_problem(b.program, MachineConfig{});
  ListOptions lo;
  lo.priority = ListOptions::Priority::kMobility;
  Schedule s = list_schedule(pr, lo);
  require_valid(pr, s);
  // Heuristics differ but both stay near the critical path.
  Schedule cp = list_schedule(pr);
  EXPECT_LE(s.makespan, cp.makespan + 8);
  EXPECT_GE(s.makespan, pr.critical_path() + 1);
}

TEST(Problem, AsapMobilityConsistent) {
  auto b = body();
  Problem pr = build_problem(b.program, MachineConfig{});
  for (size_t i = 0; i < pr.nodes.size(); ++i) {
    EXPECT_GE(pr.mobility(static_cast<int>(i)), 0) << i;
    // asap + height <= critical path by definition.
    EXPECT_LE(pr.asap[i] + pr.height[i], pr.critical_path());
  }
  // At least one node is on the critical path (mobility 0).
  bool any_critical = false;
  for (size_t i = 0; i < pr.nodes.size(); ++i)
    if (pr.mobility(static_cast<int>(i)) == 0) any_critical = true;
  EXPECT_TRUE(any_critical);
}

TEST(Scheduler, AnnealNeverWorseThanList) {
  auto b = body();
  Problem pr = build_problem(b.program, MachineConfig{});
  AnnealOptions ao;
  ao.iterations = 300;
  AnnealResult ar = anneal_schedule(pr, ao);
  EXPECT_LE(ar.schedule.makespan, ar.initial_makespan);
  require_valid(pr, ar.schedule);
}

TEST(Scheduler, BnbOptimalOnLoopBody) {
  auto b = body();
  Problem pr = build_problem(b.program, MachineConfig{});
  BnbOptions bo;
  bo.node_limit = 2'000'000;
  BnbResult br = branch_and_bound(pr, bo);
  require_valid(pr, br.schedule);
  Schedule lst = list_schedule(pr);
  EXPECT_LE(br.schedule.makespan, lst.makespan);
  if (br.proven_optimal) {
    // The optimum can never beat the resource/critical-path lower bounds.
    EXPECT_GE(br.schedule.makespan, pr.critical_path() + 1);
    EXPECT_GE(br.schedule.makespan, 15 - 1 + 3 + 1);  // 15 muls, II=1, Lm=3
  }
}

TEST(Scheduler, ForwardingHelps) {
  auto b = body();
  MachineConfig with;
  MachineConfig without;
  without.forwarding = false;
  Schedule s1 = list_schedule(build_problem(b.program, with));
  Schedule s2 = list_schedule(build_problem(b.program, without));
  EXPECT_LE(s1.makespan, s2.makespan);
}

TEST(Scheduler, TightReadPortsStillValid) {
  auto b = body();
  MachineConfig cfg;
  cfg.rf_read_ports = 2;
  Problem pr = build_problem(b.program, cfg);
  Schedule s = list_schedule(pr);
  require_valid(pr, s);
  MachineConfig wide;
  Schedule sw = list_schedule(build_problem(b.program, wide));
  EXPECT_GE(s.makespan, sw.makespan);
}

TEST(Scheduler, SingleWritePortStillValid) {
  auto b = body();
  MachineConfig cfg;
  cfg.rf_write_ports = 1;
  Problem pr = build_problem(b.program, cfg);
  Schedule s = list_schedule(pr);
  require_valid(pr, s);
}

TEST(Scheduler, DeeperPipelineLengthensSchedule) {
  auto b = body();
  MachineConfig shallow, deep;
  shallow.mul_latency = 1;
  deep.mul_latency = 8;
  Schedule s1 = list_schedule(build_problem(b.program, shallow));
  Schedule s2 = list_schedule(build_problem(b.program, deep));
  EXPECT_LT(s1.makespan, s2.makespan);
}

TEST(Validator, CatchesLatencyViolation) {
  auto b = body();
  Problem pr = build_problem(b.program, MachineConfig{});
  Schedule s = list_schedule(pr);
  // Pull the last node to cycle 0: must violate something.
  s.cycle.back() = 0;
  s.makespan = makespan_of(pr, s.cycle);
  EXPECT_FALSE(check_schedule(pr, s).ok());
}

TEST(Validator, CatchesUnitConflict) {
  auto b = body();
  Problem pr = build_problem(b.program, MachineConfig{});
  Schedule s = list_schedule(pr);
  // Find two muls and force them onto the same cycle.
  int first = -1;
  for (size_t i = 0; i < pr.nodes.size(); ++i) {
    if (pr.nodes[i].kind != trace::OpKind::kMul) continue;
    if (first < 0) {
      first = static_cast<int>(i);
    } else {
      s.cycle[i] = s.cycle[static_cast<size_t>(first)];
      break;
    }
  }
  s.makespan = makespan_of(pr, s.cycle);
  auto rep = check_schedule(pr, s);
  EXPECT_FALSE(rep.ok());
}

TEST(Validator, AcceptsAllSolvers) {
  auto b = body();
  Problem pr = build_problem(b.program, MachineConfig{});
  EXPECT_TRUE(check_schedule(pr, sequential_schedule(pr)).ok());
  EXPECT_TRUE(check_schedule(pr, list_schedule(pr)).ok());
}

TEST(RegAlloc, NoOverlappingLifetimesShareASlot) {
  auto b = body();
  Problem pr = build_problem(b.program, MachineConfig{});
  Schedule s = list_schedule(pr);
  Allocation a = allocate_registers(pr, s);
  // Brute-force overlap check: for every pair sharing a slot, their
  // [write, last-read] windows must not overlap.
  const trace::Program& p = b.program;
  std::vector<int> issue(p.ops.size(), -1);
  for (size_t i = 0; i < pr.nodes.size(); ++i) issue[static_cast<size_t>(pr.nodes[i].op_id)] = s.cycle[i];
  auto window = [&](int op) {
    int st = p.ops[static_cast<size_t>(op)].kind == trace::OpKind::kInput
                 ? 0
                 : issue[static_cast<size_t>(op)] + latency(pr.cfg, p.ops[static_cast<size_t>(op)].kind);
    int en = st;
    for (size_t ni = 0; ni < pr.nodes.size(); ++ni)
      for (const OperandReq& req : pr.nodes[ni].operands)
        for (int prod : req.producers)
          if (prod == op) en = std::max(en, s.cycle[ni]);
    for (const auto& [id, nm] : p.outputs)
      if (id == op) en = std::max(en, s.makespan);
    return std::make_pair(st, en);
  };
  for (size_t i = 0; i < p.ops.size(); ++i) {
    for (size_t j = i + 1; j < p.ops.size(); ++j) {
      int si = a.slot(static_cast<int>(i)), sj = a.slot(static_cast<int>(j));
      if (si < 0 || si != sj) continue;
      auto [s1, e1] = window(static_cast<int>(i));
      auto [s2, e2] = window(static_cast<int>(j));
      bool disjoint = e1 < s2 || e2 < s1;
      EXPECT_TRUE(disjoint) << "ops " << i << "," << j << " share slot " << si;
    }
  }
}

TEST(RegAlloc, LoopBodyFitsComfortably) {
  auto b = body();
  Problem pr = build_problem(b.program, MachineConfig{});
  Schedule s = list_schedule(pr);
  int pressure = register_pressure(pr, s);
  EXPECT_LE(pressure, 24);  // 9 inputs + ~12 temps
  EXPECT_GE(pressure, 9);
}

TEST(RegAlloc, RejectsTooSmallFile) {
  auto b = body();
  MachineConfig cfg;
  cfg.rf_size = 4;
  Problem pr = build_problem(b.program, cfg);
  Schedule s = list_schedule(pr);
  EXPECT_THROW(allocate_registers(pr, s), std::logic_error);
}

TEST(Microcode, RomLengthEqualsMakespan) {
  auto b = body();
  CompileResult r = compile_program(b.program, {});
  EXPECT_EQ(r.sm.cycles(), r.schedule.makespan);
  EXPECT_EQ(r.sm.preload.size(), 9u);
  EXPECT_EQ(r.sm.outputs.size(), 5u);
}

TEST(Scheduler, SecondMultiplierShortensSchedule) {
  trace::SmTraceOptions topt;
  topt.endo = trace::EndoVariant::kPaperCost;
  trace::SmTrace sm = trace::build_sm_trace(topt);
  MachineConfig one, two;
  two.num_multipliers = 2;
  two.rf_read_ports = 6;  // feed the second multiplier
  two.rf_write_ports = 3;
  Problem pr1 = build_problem(sm.program, one);
  Problem pr2 = build_problem(sm.program, two);
  Schedule s1 = list_schedule(pr1);
  Schedule s2 = list_schedule(pr2);
  require_valid(pr2, s2);
  EXPECT_LT(s2.makespan, s1.makespan);
}

TEST(Scheduler, DualUnitsRespectCapacity) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  MachineConfig cfg;
  cfg.num_multipliers = 2;
  cfg.num_addsubs = 2;
  cfg.rf_read_ports = 8;
  cfg.rf_write_ports = 4;
  Problem pr = build_problem(body.program, cfg);
  Schedule s = list_schedule(pr);
  require_valid(pr, s);
  // Force a third issue onto a cycle that already has two muls: invalid.
  std::vector<int> muls;
  for (size_t i = 0; i < pr.nodes.size(); ++i)
    if (pr.nodes[i].kind == trace::OpKind::kMul) muls.push_back(static_cast<int>(i));
  ASSERT_GE(muls.size(), 3u);
  Schedule bad = s;
  bad.cycle[static_cast<size_t>(muls[1])] = bad.cycle[static_cast<size_t>(muls[0])];
  bad.cycle[static_cast<size_t>(muls[2])] = bad.cycle[static_cast<size_t>(muls[0])];
  bad.makespan = makespan_of(pr, bad.cycle);
  EXPECT_FALSE(check_schedule(pr, bad).ok());
}

TEST(Scheduler, BnbRejectsMultiInstanceConfig) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  MachineConfig cfg;
  cfg.num_multipliers = 2;
  Problem pr = build_problem(body.program, cfg);
  EXPECT_THROW(branch_and_bound(pr), std::logic_error);
}

TEST(Compile, FullSmProgramSchedules) {
  trace::SmTraceOptions topt;
  topt.endo = trace::EndoVariant::kPaperCost;
  trace::SmTrace sm = trace::build_sm_trace(topt);
  CompileOptions copt;
  copt.solver = Solver::kList;
  CompileResult r = compile_program(sm.program, copt);
  EXPECT_GT(r.sm.cycles(), 1000);
  EXPECT_LT(r.sm.cycles(), 6000);
  EXPECT_LE(r.register_pressure, copt.cfg.rf_size);
}

}  // namespace
}  // namespace fourq::sched
