// End-to-end scalar multiplication tests (paper Alg. 1) against the
// double-and-add oracle and algebraic identities.
#include "curve/scalarmul.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fourq::curve {
namespace {

TEST(ScalarMul, MatchesReferenceOnRandomScalars) {
  Rng rng(81);
  Affine p = deterministic_point(1);
  for (int i = 0; i < 25; ++i) {
    U256 k = rng.next_u256();
    PointR1 fast = scalar_mul(k, p);
    PointR1 slow = scalar_mul_reference(k, p);
    EXPECT_TRUE(equal(fast, slow)) << "k=" << k.to_hex();
    EXPECT_TRUE(on_curve(fast));
  }
}

TEST(ScalarMul, MatchesReferenceOnEvenScalars) {
  Rng rng(82);
  Affine p = deterministic_point(2);
  for (int i = 0; i < 10; ++i) {
    U256 k = rng.next_u256();
    k.set_bit(0, false);
    EXPECT_TRUE(equal(scalar_mul(k, p), scalar_mul_reference(k, p)));
  }
}

TEST(ScalarMul, SmallScalars) {
  Affine p = deterministic_point(3);
  PointR1 acc = identity();
  PointR2 p2 = to_r2(to_r1(p));
  for (uint64_t k = 0; k <= 20; ++k) {
    PointR1 got = scalar_mul(U256(k), p);
    EXPECT_TRUE(equal(got, acc)) << "k=" << k;
    acc = add(acc, p2);
  }
}

TEST(ScalarMul, ZeroGivesIdentity) {
  Affine p = deterministic_point(4);
  EXPECT_TRUE(is_identity(scalar_mul(U256(), p)));
}

TEST(ScalarMul, BoundaryScalars) {
  Affine p = deterministic_point(5);
  // 2^64, 2^64 - 1, 2^128, 2^192, 2^256 - 1: chunk boundaries.
  const U256 cases[] = {
      U256(0, 1, 0, 0),     U256(~0ull, 0, 0, 0),  U256(0, 0, 1, 0),
      U256(0, 0, 0, 1),     U256(~0ull, ~0ull, ~0ull, ~0ull),
      U256(1, 1, 1, 1),     U256(~0ull, ~0ull, 0, 0),
  };
  for (const U256& k : cases)
    EXPECT_TRUE(equal(scalar_mul(k, p), scalar_mul_reference(k, p))) << k.to_hex();
}

TEST(ScalarMul, Distributive) {
  // [a]P + [b]P == [a+b]P (mod 2^256 wrap is fine when a+b doesn't carry).
  Rng rng(83);
  Affine p = deterministic_point(6);
  U256 a = shr(rng.next_u256(), 1);  // keep a+b < 2^256
  U256 b = shr(rng.next_u256(), 1);
  U256 s;
  ASSERT_EQ(add(a, b, s), 0u);
  PointR1 lhs = add(scalar_mul(a, p), to_r2(scalar_mul(b, p)));
  EXPECT_TRUE(equal(lhs, scalar_mul(s, p)));
}

TEST(ScalarMul, Commutes) {
  // [a][b]P == [b][a]P
  Rng rng(84);
  Affine p = deterministic_point(7);
  U256 a(rng.next_u64()), b(rng.next_u64());
  Affine ap = to_affine(scalar_mul(a, p));
  Affine bp = to_affine(scalar_mul(b, p));
  EXPECT_TRUE(equal(scalar_mul(b, ap), scalar_mul(a, bp)));
}

TEST(ScalarMul, BasePointsAreCorrectMultiples) {
  Affine p = deterministic_point(8);
  BasePoints bp = compute_base_points(p);
  EXPECT_TRUE(equal(bp.p2, scalar_mul_reference(U256(0, 1, 0, 0), p)));
  EXPECT_TRUE(equal(bp.p3, scalar_mul_reference(U256(0, 0, 1, 0), p)));
  EXPECT_TRUE(equal(bp.p4, scalar_mul_reference(U256(0, 0, 0, 1), p)));
}

TEST(ScalarMul, TableEntriesMatchDefinition) {
  Affine p = deterministic_point(9);
  BasePoints bp = compute_base_points(p);
  auto table = build_table(bp);
  for (int u = 0; u < 8; ++u) {
    // T[u] = P + u0*P2 + u1*P3 + u2*P4.
    PointR1 expect = bp.p;
    if (u & 1) expect = add(expect, to_r2(bp.p2));
    if (u & 2) expect = add(expect, to_r2(bp.p3));
    if (u & 4) expect = add(expect, to_r2(bp.p4));
    // Compare via the stored R2 coordinates: rebuild affine from R2.
    // R2 = (X+Y, Y-X, 2Z, 2dT): x = (xpy-ymx)/2Z', y = (xpy+ymx)/2Z' with
    // Z' = z2/2 -> x = (xpy-ymx)/z2 ... cross-check projectively instead.
    const PointR2& got = table[static_cast<size_t>(u)];
    PointR2 want = to_r2(expect);
    // Both are scalings of the same affine point iff cross products match.
    EXPECT_EQ(got.xpy * want.z2, want.xpy * got.z2) << u;
    EXPECT_EQ(got.ymx * want.z2, want.ymx * got.z2) << u;
    EXPECT_EQ(got.dt2 * want.z2, want.dt2 * got.z2) << u;
  }
}

TEST(ScalarMul, MulSmallMatches) {
  Affine p = deterministic_point(10);
  PointR1 r1 = to_r1(p);
  EXPECT_TRUE(equal(mul_small(12345, r1), scalar_mul(U256(12345), p)));
  EXPECT_TRUE(is_identity(mul_small(0, r1)));
}

TEST(ScalarMul, CofactorTimesSubgroupOrderKillsEveryPoint) {
  // #E = 2^3 * 7^2 * N: [392]([N]P) must be the identity for any P if the
  // candidate N is correct. Run only when parameters validate; this is the
  // full-group version of the generator order check.
  auto v = validate_params();
  if (!v.all_ok()) GTEST_SKIP() << "candidate FourQ constants failed validation";
  for (uint64_t s : {11ull, 12ull}) {
    Affine p = deterministic_point(s);
    PointR1 np = scalar_mul(candidate_subgroup_order(), p);
    PointR1 full = mul_small(392, np);
    EXPECT_TRUE(is_identity(full));
  }
}

TEST(ScalarMul, OrderTwoPoint) {
  // (0, -1) has order 2: [k]P is P for odd k, O for even k. Exercises the
  // complete-addition property throughout the whole pipeline (the table is
  // degenerate: many entries coincide or are the identity).
  Affine t{Fp2(), -Fp2::from_u64(1)};
  ASSERT_TRUE(on_curve(t));
  PointR1 t1 = to_r1(t);
  Rng rng(85);
  for (int i = 0; i < 6; ++i) {
    U256 k = rng.next_u256();
    PointR1 r = scalar_mul(k, t);
    if (k.is_odd()) {
      EXPECT_TRUE(equal(r, t1)) << k.to_hex();
    } else {
      EXPECT_TRUE(is_identity(r)) << k.to_hex();
    }
  }
}

TEST(ScalarMul, NegatedPointGivesNegatedResult) {
  Affine p = deterministic_point(13);
  Affine np = neg(p);
  U256 k = Rng(86).next_u256();
  PointR1 kp = scalar_mul(k, p);
  PointR1 knp = scalar_mul(k, np);
  // [k](-P) == -([k]P): sum must be the identity.
  EXPECT_TRUE(is_identity(add(kp, to_r2(knp))));
}

TEST(ScalarMul, ScalarOneAndOrderBoundaries) {
  Affine p = deterministic_point(14);
  EXPECT_TRUE(equal(scalar_mul(U256(1), p), to_r1(p)));
  // [2^255]P == doubling [2^254]P.
  U256 half;
  half.set_bit(254, true);
  U256 full;
  full.set_bit(255, true);
  EXPECT_TRUE(equal(scalar_mul(full, p), dbl(scalar_mul(half, p))));
}

TEST(ScalarMul, OpCountsMatchAlgorithmShape) {
  MulOpCounts c = scalar_mul_op_counts();
  // 3*64 base-point doublings + 64 loop doublings.
  EXPECT_EQ(c.doublings, 256);
  // 7 table + 65 digit additions + 1 correction.
  EXPECT_EQ(c.additions, 73);
  MulOpCounts r = reference_op_counts();
  EXPECT_EQ(r.doublings, 256);
}

}  // namespace
}  // namespace fourq::curve
