// Known-answer regression vectors for scalar multiplication on the
// validated FourQ generator. Because the candidate parameters pass the
// full validation suite (generator on-curve, [N]G = O, #E = 392N forced by
// Hasse), these are genuine FourQ vectors usable for cross-implementation
// comparison — and they pin this library's semantics against silent
// regressions.
#include <gtest/gtest.h>

#include "asic/simulator.hpp"
#include "curve/fixed_base.hpp"
#include "curve/scalarmul.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::curve {
namespace {

struct Kat {
  const char* k;
  const char* x_re;
  const char* x_im;
  const char* y_re;
  const char* y_im;
};

// [k]G for the standard generator G (computed by this library, pinned).
const Kat kVectors[] = {
    {"0000000000000000000000000000000000000000000000000000000000000001",
     "1a3472237c2fb305286592ad7b3833aa", "1e1f553f2878aa9c96869fb360ac77f6",
     "0e3fee9ba120785ab924a2462bcbb287", "6e1c4af8630e024249a7c344844c8b5c"},
    {"0000000000000000000000000000000000000000000000000000000000000002",
     "210a7d9f9782a38cdffd6556d311ce43", "58d4179cfc261e7b023c5e59afc61df4",
     "2db3fc78c3d93dfe35a2323d01cb626c", "44c04cb98a015452ee7c9525e2919bf8"},
    {"0000000000000000000000000000000000000000000000000000000000000003",
     "6a9819b5c0f0f512821ff2e80dc5e252", "1dd2c4814e7439e77f29641b85d56f5c",
     "6caaddc6d7b431a8070763c94e098671", "771ca389a001970fb4e0f6026423303e"},
    {"00000000000000000000000000000000000000000000000000000000deadbeef",
     "772afc5213dcd5c2dc04977353d39356", "406a6fca98ff9395c0f4760239aafb26",
     "6623470743b69aeb5edc0c4e75b2f69a", "2d3909c9b77b957e2dedb67bc7c5fc80"},
    {"00ffccbbaa9988770f0f0f0f0f0f0f0ffedcba98765432100123456789abcdef",
     "1f0fe5f9ef99c8df6478b24bc0b2d501", "47c6a8bd6423f9bdb4da9755dc1c02a9",
     "261aec94da09b3dc9dd756eae50c2fca", "3ea7277636e35edfe4a063dbb504c36f"},
    {"ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
     "5c00ee23822ab27433c5b683423aed82", "7aa9a9931634ee542681f229af9629b8",
     "05311a68583db74d3ba3d1faac7b3365", "22af6a3424f6e578c7148736406d9213"},
};

Affine expected(const Kat& v) {
  return Affine{Fp2::from_hex(v.x_re, v.x_im), Fp2::from_hex(v.y_re, v.y_im)};
}

Affine generator() {
  return Affine{candidate_generator_x(), candidate_generator_y()};
}

TEST(KnownAnswers, ScalarMulPath) {
  for (const Kat& v : kVectors) {
    Affine got = to_affine(scalar_mul(U256::from_hex(v.k), generator()));
    Affine want = expected(v);
    EXPECT_EQ(got.x, want.x) << v.k;
    EXPECT_EQ(got.y, want.y) << v.k;
  }
}

TEST(KnownAnswers, ReferencePath) {
  for (const Kat& v : kVectors) {
    Affine got = to_affine(scalar_mul_reference(U256::from_hex(v.k), generator()));
    Affine want = expected(v);
    EXPECT_EQ(got.x, want.x) << v.k;
    EXPECT_EQ(got.y, want.y) << v.k;
  }
}

TEST(KnownAnswers, FixedBasePath) {
  FixedBaseMul fb(generator());
  for (const Kat& v : kVectors) {
    Affine got = to_affine(fb.mul(U256::from_hex(v.k)));
    Affine want = expected(v);
    EXPECT_EQ(got.x, want.x) << v.k;
    EXPECT_EQ(got.y, want.y) << v.k;
  }
}

TEST(KnownAnswers, CycleAccurateHardwarePath) {
  // The full stack — trace, schedule, ROM, pipelined datapath — reproduces
  // the same vectors.
  trace::SmTrace sm = trace::build_sm_trace({});
  sched::CompileResult r = sched::compile_program(sm.program, {});
  Affine g = generator();
  trace::InputBindings b;
  b.emplace_back(sm.in_zero, Fp2());
  b.emplace_back(sm.in_one, Fp2::from_u64(1));
  b.emplace_back(sm.in_two_d, curve_2d());
  b.emplace_back(sm.in_px, g.x);
  b.emplace_back(sm.in_py, g.y);

  for (const Kat& v : kVectors) {
    U256 k = U256::from_hex(v.k);
    Decomposition dec = decompose(k);
    RecodedScalar rec = recode(dec.a);
    asic::SimResult res = asic::simulate(r.sm, b, trace::EvalContext{&rec, dec.k_was_even});
    Affine want = expected(v);
    EXPECT_EQ(res.outputs.at("x"), want.x) << v.k;
    EXPECT_EQ(res.outputs.at("y"), want.y) << v.k;
  }
}

TEST(KnownAnswers, VectorsAreOnCurve) {
  for (const Kat& v : kVectors) EXPECT_TRUE(on_curve(expected(v))) << v.k;
}

}  // namespace
}  // namespace fourq::curve
