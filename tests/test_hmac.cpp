// HMAC-SHA-256 known-answer tests (RFC 4231) and nonce-derivation
// behaviour.
#include "hash/hmac.hpp"

#include <gtest/gtest.h>

namespace fourq::hash {
namespace {

TEST(Hmac, Rfc4231Case1) {
  std::string key(20, '\x0b');
  EXPECT_EQ(digest_hex(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(digest_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // Keys longer than the block size are pre-hashed; a 100-byte key must
  // give the same MAC as its SHA-256 digest used as the key.
  std::string long_key(100, 'K');
  Sha256::Digest kd = Sha256::digest(long_key);
  std::string hashed_key(reinterpret_cast<const char*>(kd.data()), kd.size());
  EXPECT_EQ(hmac_sha256(long_key, "msg"), hmac_sha256(hashed_key, "msg"));
}

TEST(Hmac, KeySensitivity) {
  EXPECT_NE(hmac_sha256("key1", "msg"), hmac_sha256("key2", "msg"));
  EXPECT_NE(hmac_sha256("key", "msg1"), hmac_sha256("key", "msg2"));
  EXPECT_NE(hmac_sha256("", "msg"), hmac_sha256("k", "msg"));
}

TEST(Hmac, EmptyInputsDefined) {
  // Must not crash and must be deterministic.
  EXPECT_EQ(hmac_sha256("", ""), hmac_sha256("", ""));
}

TEST(DeriveNonce, DeterministicAndInRange) {
  U256 order = U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  U256 secret(0x1234567890abcdefull, 42, 0, 0);
  U256 n1 = derive_nonce(secret, "ctx", "message", order);
  U256 n2 = derive_nonce(secret, "ctx", "message", order);
  EXPECT_EQ(n1, n2);
  EXPECT_FALSE(n1.is_zero());
  EXPECT_LT(n1, order);
}

TEST(DeriveNonce, ContextAndMessageSeparation) {
  U256 order(0xffffffffffffffffull, 0xffffffffffffffffull, 0, 0);
  U256 secret(7);
  EXPECT_NE(derive_nonce(secret, "ctx1", "m", order), derive_nonce(secret, "ctx2", "m", order));
  EXPECT_NE(derive_nonce(secret, "ctx", "m1", order), derive_nonce(secret, "ctx", "m2", order));
  EXPECT_NE(derive_nonce(U256(1), "ctx", "m", order), derive_nonce(U256(2), "ctx", "m", order));
}

TEST(DeriveNonce, TinyOrderStillTerminates) {
  // With order 2, candidates are in {0, 1}: derivation must skip zeros and
  // return 1 eventually.
  EXPECT_EQ(derive_nonce(U256(99), "c", "m", U256(2)), U256(1));
}

}  // namespace
}  // namespace fourq::hash
