// Streaming-Pippenger property tests: chunk-size bitwise invariance,
// bucket-grid thread-count invariance, GLV pre-split differentials, the
// batched-affine bucket path, and the bounded-memory contract. Complements
// test_multiscalar.cpp (which pins the backend-agreement and recoding
// behaviour shared with the non-streaming entry points).
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "curve/multiscalar.hpp"
#include "curve/scalarmul.hpp"

namespace fourq::curve {
namespace {

Affine identity_affine() { return Affine{Fp2(), Fp2::from_u64(1)}; }

// n distinct points without n square-root searches: an additive walk
// P, P+Q, P+2Q, ... normalised in one batched inversion — the same
// construction the large-n benches use to build their pools.
std::vector<Affine> chain_points(size_t n, uint64_t seed) {
  PointR2 step = to_r2(to_r1(deterministic_point(seed + 1)));
  std::vector<PointR1> chain;
  chain.reserve(n);
  PointR1 cur = to_r1(deterministic_point(seed));
  for (size_t i = 0; i < n; ++i) {
    chain.push_back(cur);
    cur = add(cur, step);
  }
  return batch_to_affine(chain);
}

std::vector<ScalarPoint> chain_terms(size_t n, uint64_t seed, int bits = 256) {
  std::vector<Affine> pts = chain_points(n, seed);
  Rng rng(seed);
  std::vector<ScalarPoint> terms;
  terms.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    U256 k = rng.next_u256();
    if (bits < 256) {
      for (int j = bits; j < 256; ++j)
        k.w[static_cast<size_t>(j) / 64] &=
            ~(uint64_t{1} << (static_cast<size_t>(j) % 64));
    }
    terms.push_back({k, pts[i], bits});
  }
  return terms;
}

PointR1 naive_msm(const std::vector<ScalarPoint>& terms) {
  PointR1 acc = identity();
  for (const ScalarPoint& t : terms) {
    if (t.k.is_zero()) continue;
    acc = add(acc, to_r2(scalar_mul(t.k, t.p)));
  }
  return acc;
}

void expect_bitwise(const PointR1& a, const PointR1& b, const char* what) {
  EXPECT_EQ(a.X, b.X) << what;
  EXPECT_EQ(a.Y, b.Y) << what;
  EXPECT_EQ(a.Z, b.Z) << what;
  EXPECT_EQ(a.Ta, b.Ta) << what;
  EXPECT_EQ(a.Tb, b.Tb) << what;
}

void expect_same_point(const PointR1& a, const PointR1& b, const char* what) {
  Affine aa = to_affine(a), bb = to_affine(b);
  EXPECT_TRUE(aa.x == bb.x && aa.y == bb.y) << what;
}

MsmParallelFor thread_pool_hook(unsigned nthreads, std::atomic<size_t>* calls) {
  return [nthreads, calls](size_t n, const std::function<void(size_t)>& fn) {
    if (calls) calls->fetch_add(1);
    std::vector<std::thread> pool;
    std::atomic<size_t> next{0};
    for (unsigned t = 0; t < nthreads; ++t)
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
      });
    for (auto& th : pool) th.join();
  };
}

// Mixed term set with degenerate entries threaded through: zero scalars,
// identity points, and an identity point with a non-zero scalar.
std::vector<ScalarPoint> mixed_terms(size_t n, uint64_t seed) {
  std::vector<ScalarPoint> terms = chain_terms(n, seed);
  Rng rng(seed ^ 0x5eed);
  for (size_t i = 3; i < n; i += 17) terms[i].k = U256();
  for (size_t i = 5; i < n; i += 23) terms[i].p = identity_affine();
  if (n > 7) terms[7] = {rng.next_u256(), identity_affine(), 256};
  return terms;
}

TEST(MsmStream, ChunkSizeIsBitwiseInvariant) {
  const size_t n = 600;
  std::vector<ScalarPoint> terms = mixed_terms(n, 0xc0ffee);
  MsmOptions ref;
  ref.backend = MsmBackend::kPippenger;
  ref.chunk = n;  // one chunk: the non-streaming shape
  PointR1 want = multi_scalar_mul(terms, ref);
  expect_same_point(want, naive_msm(terms), "pippenger vs naive");

  for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}, size_t{4096}}) {
    MsmOptions opts = ref;
    opts.chunk = chunk;
    MsmStats st;
    opts.stats = &st;
    PointR1 got = multi_scalar_mul(terms, opts);
    expect_bitwise(got, want, "chunked vs single-chunk");
    EXPECT_EQ(st.chunks, (n + chunk - 1) / chunk) << "chunk=" << chunk;
  }
}

TEST(MsmStream, StreamEntryMatchesVectorEntry) {
  const size_t n = 500;
  std::vector<ScalarPoint> terms = mixed_terms(n, 0xbeef);
  MsmOptions opts;
  opts.backend = MsmBackend::kPippenger;
  opts.window = 8;  // pin: the stream entry sizes its model from the hint
  PointR1 want = multi_scalar_mul(terms, opts);

  // A source that delivers ragged slices (never a full chunk) — the result
  // must not care how the pulls were sized.
  size_t pos = 0, pulls = 0;
  MsmTermSource src = [&](ScalarPoint* out, size_t max) -> size_t {
    size_t want_n = 1 + (pulls * 13) % 97;
    ++pulls;
    size_t give = std::min(std::min(want_n, max), terms.size() - pos);
    for (size_t i = 0; i < give; ++i) out[i] = terms[pos + i];
    pos += give;
    return give;
  };
  MsmStats st;
  opts.stats = &st;
  PointR1 got = multi_scalar_mul_stream(src, n, opts);
  expect_bitwise(got, want, "stream source vs vector");
  EXPECT_GT(st.chunks, 1u);
  EXPECT_EQ(st.terms + 0, st.terms);  // staged live count is filled in
}

TEST(MsmStream, BucketGridIsThreadCountInvariantAt2p16) {
  // 2^16 half-length terms: the scale the bucket-segment grid exists for.
  // The projective result — not just the point — must be identical across
  // serial execution and pools of different widths.
  const size_t n = size_t{1} << 16;
  std::vector<ScalarPoint> terms = chain_terms(n, 0x160, 128);
  MsmOptions serial;
  serial.backend = MsmBackend::kPippenger;
  MsmStats st;
  serial.stats = &st;
  PointR1 want = multi_scalar_mul(terms, serial);
  EXPECT_GT(st.segments, 1) << "grid should be segmented at this scale";
  EXPECT_GT(st.chunks, 1u) << "2^16 terms should stream in several chunks";

  for (unsigned nthreads : {2u, 7u}) {
    std::atomic<size_t> calls{0};
    MsmOptions par = serial;
    par.stats = nullptr;
    par.parallel = thread_pool_hook(nthreads, &calls);
    PointR1 got = multi_scalar_mul(terms, par);
    EXPECT_GT(calls.load(), 0u);
    expect_bitwise(got, want, "pool vs serial");
  }
}

TEST(MsmStream, GlvPreSplitMatchesPlainPippenger) {
  const size_t n = 300;
  std::vector<ScalarPoint> terms = mixed_terms(n, 0x91f);
  // Edge scalars: single-limb, top-limb-only, and maximal.
  terms[0].k = U256(1);
  terms[1].k = U256(~0ull, 0, 0, 0);
  terms[2].k = U256(0, 0, 0, ~0ull);
  terms[4].k = U256(~0ull, ~0ull, ~0ull, ~0ull);

  MsmOptions plain;
  plain.backend = MsmBackend::kPippenger;
  plain.glv = MsmTri::kOff;
  PointR1 want = multi_scalar_mul(terms, plain);

  MsmOptions glv = plain;
  glv.glv = MsmTri::kOn;
  MsmStats st;
  glv.stats = &st;
  PointR1 got = multi_scalar_mul(terms, glv);
  expect_same_point(got, want, "glv vs plain");
  EXPECT_TRUE(st.glv);
  EXPECT_GT(st.sub_terms, st.terms) << "split must expand the term list";
  EXPECT_LE(st.sub_terms, 4 * st.terms);
  EXPECT_GE(st.inversion_batches, 1u) << "aux normalisation is batched";

  // The split is chunk-invariant too (aux points are recomputed per chunk,
  // bucket state persists).
  MsmOptions glv_chunked = glv;
  glv_chunked.stats = nullptr;
  glv_chunked.chunk = 37;
  expect_bitwise(multi_scalar_mul(terms, glv_chunked), got, "glv chunked");
}

TEST(MsmStream, GlvAutoFollowsAuxCostModel) {
  // Software-honest default: three 64-doubling auxiliary chains per term
  // never pay for a 4x window reduction.
  EXPECT_FALSE(msm_glv_wins(4096, 4096 * 250, 256, 192));
  // The paper's operating point (free endomorphism): the split wins where
  // the window/fold costs still matter relative to bucket insertion.
  EXPECT_TRUE(msm_glv_wins(256, 256 * 250, 256, 0));
  // The split conserves total scalar bits, so at extreme n the 3n extra
  // bucket insertions outweigh the window shrink even with free aux points
  // — the model must know that, not just the aux price.
  EXPECT_FALSE(msm_glv_wins(size_t{1} << 20, (size_t{1} << 20) * 250, 256, 0));
  // Nothing to split below one limb.
  EXPECT_FALSE(msm_glv_wins(4096, 4096 * 60, 64, 0));

  const size_t n = 200;
  std::vector<ScalarPoint> terms = chain_terms(n, 0xa111);
  MsmOptions opts;
  opts.backend = MsmBackend::kPippenger;
  MsmStats st;
  opts.stats = &st;
  (void)multi_scalar_mul(terms, opts);
  EXPECT_FALSE(st.glv) << "auto must decline glv at software aux cost";

  opts.glv_aux_dbl = 0;
  PointR1 got = multi_scalar_mul(terms, opts);
  EXPECT_TRUE(st.glv) << "auto must take glv when aux points are free";
  expect_same_point(got, naive_msm(terms), "auto-glv result");
}

TEST(MsmStream, BatchedAffineBucketsMatchExtendedCoords) {
  const size_t n = 300;
  std::vector<ScalarPoint> terms = mixed_terms(n, 0xaff1);
  MsmOptions r1;
  r1.backend = MsmBackend::kPippenger;
  r1.affine = MsmTri::kOff;
  PointR1 want = multi_scalar_mul(terms, r1);

  MsmOptions aff = r1;
  aff.affine = MsmTri::kOn;
  MsmStats st;
  aff.stats = &st;
  PointR1 got = multi_scalar_mul(terms, aff);
  expect_same_point(got, want, "affine buckets vs R1 buckets");
  EXPECT_TRUE(st.affine);
  EXPECT_GT(st.bucket_rounds, 0u);
  EXPECT_GE(st.inversion_batches, st.bucket_rounds)
      << "every round renormalises with one simultaneous inversion";

  // Affine accumulation composes with the GLV pre-split and with chunking.
  MsmOptions both = aff;
  both.stats = nullptr;
  both.glv = MsmTri::kOn;
  both.chunk = 53;
  expect_same_point(multi_scalar_mul(terms, both), want, "affine+glv+chunked");

  // kAuto is an honest off in software.
  MsmOptions auto_opts;
  auto_opts.backend = MsmBackend::kPippenger;
  MsmStats auto_st;
  auto_opts.stats = &auto_st;
  (void)multi_scalar_mul(terms, auto_opts);
  EXPECT_FALSE(auto_st.affine);
}

TEST(MsmStream, PlantedZeroAndIdentityTermsAtScale) {
  // 20000 terms, ~97% degenerate (zero scalar or identity point): the
  // bucket pipeline must skip them without perturbing the live sum, across
  // a non-trivial number of chunks.
  const size_t n = 20000;
  std::vector<ScalarPoint> terms = chain_terms(n, 0xdead, 256);
  std::vector<ScalarPoint> live;
  for (size_t i = 0; i < n; ++i) {
    if (i % 40 == 0) {
      live.push_back(terms[i]);
      continue;
    }
    if (i % 2)
      terms[i].k = U256();
    else
      terms[i].p = identity_affine();
  }
  MsmOptions opts;
  opts.chunk = 512;
  MsmStats st;
  opts.stats = &st;
  PointR1 got = multi_scalar_mul(terms, opts);
  EXPECT_EQ(st.backend, MsmBackend::kPippenger);
  EXPECT_EQ(st.chunks, (n + 511) / 512);
  // Odd indices were zeroed (not live); identity-point terms keep their
  // non-zero scalars and stay live.
  EXPECT_EQ(st.terms, n / 2);
  expect_same_point(got, naive_msm(live), "sparse sweep vs naive live sum");
}

TEST(MsmStream, PeakMemoryTracksChunkNotTermCount) {
  // Same window (so the bucket grid is fixed): the accounted peak must
  // grow with the chunk size, and must NOT grow with n at a fixed chunk.
  auto run = [](size_t n, size_t chunk) {
    std::vector<ScalarPoint> terms = chain_terms(n, 0x3e3, 128);
    MsmOptions opts;
    opts.backend = MsmBackend::kPippenger;
    opts.window = 10;
    opts.chunk = chunk;
    MsmStats st;
    opts.stats = &st;
    (void)multi_scalar_mul(terms, opts);
    return st;
  };
  MsmStats small_chunk = run(8192, 512);
  MsmStats big_chunk = run(8192, 8192);
  EXPECT_EQ(small_chunk.chunks, 16u);
  EXPECT_EQ(big_chunk.chunks, 1u);
  EXPECT_LT(small_chunk.peak_bytes, big_chunk.peak_bytes);

  MsmStats more_terms = run(16384, 512);
  EXPECT_EQ(more_terms.peak_bytes, small_chunk.peak_bytes)
      << "peak is O(buckets + chunk), independent of n";
}

TEST(MsmStream, LaneWavesOffMatchesBitwise) {
  const size_t n = 500;
  std::vector<ScalarPoint> terms = chain_terms(n, 0x1a9e5);
  MsmOptions on;
  on.backend = MsmBackend::kPippenger;
  MsmStats st_on;
  on.stats = &st_on;
  PointR1 want = multi_scalar_mul(terms, on);
  EXPECT_GT(st_on.bucket_waves, 0u);

  MsmOptions off = on;
  MsmStats st_off;
  off.stats = &st_off;
  off.lanes = MsmTri::kOff;
  PointR1 got = multi_scalar_mul(terms, off);
  EXPECT_EQ(st_off.bucket_waves, 0u);
  expect_bitwise(got, want, "scalar adds vs lane waves");
}

TEST(MsmStream, SegmentOverrideKeepsTheSum) {
  // Different segment counts change the fold tree (so projective
  // coordinates differ) but never the point. nseg = 1 is the classic
  // single S/T chain.
  const size_t n = 400;
  std::vector<ScalarPoint> terms = chain_terms(n, 0x5e9);
  MsmOptions base;
  base.backend = MsmBackend::kPippenger;
  base.window = 9;  // half = 256 buckets: room for every override below
  MsmStats st;
  base.stats = &st;
  PointR1 want = multi_scalar_mul(terms, base);
  EXPECT_GT(st.segments, 1);
  for (int nseg : {1, 2, 16}) {
    MsmOptions opts = base;
    opts.stats = nullptr;
    opts.segments = nseg;
    expect_same_point(multi_scalar_mul(terms, opts), want, "segment override");
  }
}

}  // namespace
}  // namespace fourq::curve
