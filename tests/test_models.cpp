// Tests for the P-256 hardware datapath model (Table II comparison
// substrate).
#include "models/p256_hw.hpp"

#include <gtest/gtest.h>

#include "trace/sm_trace.hpp"

namespace fourq::models {
namespace {

TEST(P256Hw, OpCountsMatchFormulaCosts) {
  // dbl = 4M+4S (8 multiplier ops), mixed add = 8M+3S (11): always-add
  // runs 255 of each.
  P256HwOptions opt;
  P256HwResult r = model_p256_sm(opt);
  EXPECT_EQ(r.ops.muls, 255 * (8 + 11));
  EXPECT_GT(r.ops.addsubs, 255 * 10);
}

TEST(P256Hw, WindowedRecodingCutsMultiplications) {
  P256HwOptions win;
  win.add_every = 4;
  P256HwOptions always;
  EXPECT_LT(model_p256_sm(win).ops.muls, model_p256_sm(always).ops.muls);
}

TEST(P256Hw, CyclesMonotoneInInitiationInterval) {
  int prev = 0;
  for (int ii : {1, 2, 4, 8}) {
    P256HwOptions opt;
    opt.cfg.mul_ii = ii;
    opt.cfg.mul_latency = std::max(8, ii);
    int c = model_p256_sm(opt).cycles;
    EXPECT_GE(c, prev) << "ii=" << ii;
    prev = c;
  }
}

TEST(P256Hw, ShortScalarScalesDown) {
  P256HwOptions small;
  small.bits = 32;
  P256HwOptions full;
  P256HwResult rs = model_p256_sm(small);
  P256HwResult rf = model_p256_sm(full);
  EXPECT_LT(rs.cycles, rf.cycles / 4);
  EXPECT_GT(rs.cycles, 0);
}

TEST(P256Hw, SlowerThanFourQDatapath) {
  // The structural heart of Table II: P-256 on its conventional datapath
  // needs several times the cycles of FourQ's program on the Fp2 datapath.
  trace::SmTraceOptions topt;
  topt.endo = trace::EndoVariant::kPaperCost;
  sched::CompileResult fourq =
      sched::compile_program(trace::build_sm_trace(topt).program, {});
  P256HwOptions opt;
  opt.add_every = 4;  // give P-256 its best recoding
  P256HwResult p256 = model_p256_sm(opt);
  EXPECT_GT(p256.cycles, 3 * fourq.sm.cycles());
}

}  // namespace
}  // namespace fourq::models
