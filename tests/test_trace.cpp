// Tests for the tracing layer: the recorded SM program, interpreted over
// concrete field values, must reproduce curve::scalar_mul exactly — the
// trace is a faithful re-expression of Algorithm 1 (paper §III-C step 2).
#include "trace/sm_trace.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "trace/eval.hpp"

namespace fourq::trace {
namespace {

using curve::Fp2;

InputBindings standard_bindings(const SmTrace& sm, const curve::Affine& p) {
  InputBindings b;
  b.emplace_back(sm.in_zero, Fp2());
  b.emplace_back(sm.in_one, Fp2::from_u64(1));
  b.emplace_back(sm.in_two_d, curve::curve_2d());
  b.emplace_back(sm.in_px, p.x);
  b.emplace_back(sm.in_py, p.y);
  for (size_t i = 0; i < sm.in_endo_consts.size(); ++i)
    b.emplace_back(sm.in_endo_consts[i], Fp2::from_u64(3 + i, 7 + i));
  return b;
}

TEST(SmTrace, FunctionalVariantMatchesScalarMul) {
  SmTrace sm = build_sm_trace({});
  curve::Affine p = curve::deterministic_point(21);
  InputBindings bindings = standard_bindings(sm, p);
  Rng rng(401);
  for (int i = 0; i < 6; ++i) {
    U256 k = rng.next_u256();
    curve::Decomposition dec = curve::decompose(k);
    curve::RecodedScalar rec = curve::recode(dec.a);
    EvalContext ctx{&rec, dec.k_was_even};
    auto out = evaluate(sm.program, bindings, ctx);
    curve::Affine expect = curve::to_affine(curve::scalar_mul(k, p));
    EXPECT_EQ(out.at("x"), expect.x) << "k=" << k.to_hex();
    EXPECT_EQ(out.at("y"), expect.y);
  }
}

TEST(SmTrace, FunctionalVariantEvenScalar) {
  SmTrace sm = build_sm_trace({});
  curve::Affine p = curve::deterministic_point(22);
  InputBindings bindings = standard_bindings(sm, p);
  U256 k = Rng(402).next_u256();
  k.set_bit(0, false);
  curve::Decomposition dec = curve::decompose(k);
  ASSERT_TRUE(dec.k_was_even);
  curve::RecodedScalar rec = curve::recode(dec.a);
  auto out = evaluate(sm.program, bindings, EvalContext{&rec, true});
  curve::Affine expect = curve::to_affine(curve::scalar_mul(k, p));
  EXPECT_EQ(out.at("x"), expect.x);
  EXPECT_EQ(out.at("y"), expect.y);
}

TEST(SmTrace, ProjectiveVariantMatches) {
  SmTraceOptions opt;
  opt.include_inversion = false;
  SmTrace sm = build_sm_trace(opt);
  curve::Affine p = curve::deterministic_point(23);
  U256 k(0x1234567890abcdefull, 42, 0, 99);
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  auto out = evaluate(sm.program, standard_bindings(sm, p), EvalContext{&rec, dec.k_was_even});
  // X/Z, Y/Z must equal the affine result.
  curve::Affine expect = curve::to_affine(curve::scalar_mul(k, p));
  Fp2 zi = out.at("Z").inv();
  EXPECT_EQ(out.at("X") * zi, expect.x);
  EXPECT_EQ(out.at("Y") * zi, expect.y);
}

TEST(SmTrace, PaperCostVariantEvaluates) {
  SmTraceOptions opt;
  opt.endo = EndoVariant::kPaperCost;
  SmTrace sm = build_sm_trace(opt);
  EXPECT_EQ(sm.in_endo_consts.size(), 6u);
  curve::Affine p = curve::deterministic_point(24);
  U256 k = Rng(403).next_u256();
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  // No curve-level meaning (placeholder endomorphisms), but it must evaluate
  // deterministically and produce a consistent result.
  auto out1 = evaluate(sm.program, standard_bindings(sm, p), EvalContext{&rec, dec.k_was_even});
  auto out2 = evaluate(sm.program, standard_bindings(sm, p), EvalContext{&rec, dec.k_was_even});
  EXPECT_EQ(out1.at("x"), out2.at("x"));
  EXPECT_FALSE(out1.at("x").is_zero());
}

TEST(SmTrace, OpMixNearPaperProfile) {
  // §III-B: F_{p^2} multiplications ≈ 57% of arithmetic operations.
  SmTraceOptions opt;
  opt.endo = EndoVariant::kPaperCost;
  SmTrace sm = build_sm_trace(opt);
  OpStats s = count_ops(sm.program);
  EXPECT_GT(s.mul_fraction(), 0.50);
  EXPECT_LT(s.mul_fraction(), 0.65);
  // Main loop alone: 64 iterations of 15 muls.
  EXPECT_GT(s.muls, 64 * 15);
}

TEST(SmTrace, FunctionalVariantLarger) {
  // The functional variant pays 192 doublings, the paper-cost one does not.
  OpStats fn = count_ops(build_sm_trace({}).program);
  SmTraceOptions opt;
  opt.endo = EndoVariant::kPaperCost;
  OpStats pc = count_ops(build_sm_trace(opt).program);
  EXPECT_GT(fn.muls, pc.muls + 1000);
}

TEST(SmTrace, DigitCountRespected) {
  SmTraceOptions opt;
  opt.digits = 10;
  opt.include_inversion = false;
  SmTrace sm = build_sm_trace(opt);
  EXPECT_EQ(sm.program.iterations, 10);
}

TEST(LoopBody, MatchesPaperOperationCounts) {
  // Fig. 2(b): the double-and-add body is 15 F_{p^2} multiplications and
  // ~13 add/subs (ours: 12 — the negated-dt2 table layout absorbs the sign
  // op into addressing).
  LoopBodyTrace body = build_loop_body_trace();
  OpStats s = count_ops(body.program);
  EXPECT_EQ(s.muls, 15);
  EXPECT_EQ(s.addsubs, 12);
  EXPECT_EQ(s.inputs, 9);  // 5 accumulator coords + 4 table coords
  EXPECT_EQ(body.program.outputs.size(), 5u);
}

TEST(LoopBody, EvaluatesLikePointFormulas) {
  LoopBodyTrace body = build_loop_body_trace();
  curve::Affine pa = curve::deterministic_point(25);
  curve::PointR1 q = curve::dbl(curve::to_r1(pa));  // arbitrary state
  curve::PointR2 e = curve::to_r2(curve::to_r1(curve::deterministic_point(26)));
  InputBindings b;
  b.emplace_back(body.q_inputs[0], q.X);
  b.emplace_back(body.q_inputs[1], q.Y);
  b.emplace_back(body.q_inputs[2], q.Z);
  b.emplace_back(body.q_inputs[3], q.Ta);
  b.emplace_back(body.q_inputs[4], q.Tb);
  b.emplace_back(body.table_inputs[0], e.xpy);
  b.emplace_back(body.table_inputs[1], e.ymx);
  b.emplace_back(body.table_inputs[2], e.z2);
  b.emplace_back(body.table_inputs[3], e.dt2);
  auto out = evaluate(body.program, b, EvalContext{});
  curve::PointR1 expect = curve::add(curve::dbl(q), e);
  EXPECT_EQ(out.at("Qx"), expect.X);
  EXPECT_EQ(out.at("Qy"), expect.Y);
  EXPECT_EQ(out.at("Qz"), expect.Z);
  EXPECT_EQ(out.at("Ta"), expect.Ta);
  EXPECT_EQ(out.at("Tb"), expect.Tb);
}

TEST(Eval, UnboundInputRejected) {
  LoopBodyTrace body = build_loop_body_trace();
  EXPECT_THROW(evaluate(body.program, {}, EvalContext{}), std::logic_error);
}

TEST(Eval, DigitSelectWithoutRecodedRejected) {
  SmTraceOptions opt;
  opt.include_inversion = false;
  SmTrace sm = build_sm_trace(opt);
  curve::Affine p = curve::deterministic_point(27);
  EXPECT_THROW(evaluate(sm.program, standard_bindings(sm, p), EvalContext{}),
               std::logic_error);
}

TEST(Validate, RejectsForwardReference) {
  Program p;
  Op input;
  input.kind = OpKind::kInput;
  p.add_op(input);
  Op bad;
  bad.kind = OpKind::kAdd;
  bad.a = Operand::of(0);
  bad.b = Operand::of(5);  // forward/out-of-range
  p.add_op(bad);
  EXPECT_THROW(validate(p), std::logic_error);
}

TEST(Validate, AcceptsTracedPrograms) {
  EXPECT_NO_THROW(validate(build_loop_body_trace().program));
  EXPECT_NO_THROW(validate(build_sm_trace({}).program));
}

TEST(Tracer, ConjSemantics) {
  Tracer t;
  Fp2Var a = t.input("a");
  Fp2Var c = t.conj(a);
  t.mark_output(c, "out");
  Fp2 v = Fp2::from_u64(5, 9);
  auto out = evaluate(t.program(), {{a.id, v}}, EvalContext{});
  EXPECT_EQ(out.at("out"), v.conj());
}

TEST(Tracer, MixedTracerOperandsRejected) {
  Tracer t1, t2;
  Fp2Var a = t1.input("a");
  Fp2Var b = t2.input("b");
  EXPECT_THROW((void)(a + b), std::logic_error);
}

}  // namespace
}  // namespace fourq::trace
