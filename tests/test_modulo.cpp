// Tests for the iterative modulo scheduler (loop-kernel software
// pipelining analysis).
#include "sched/modulo.hpp"

#include <gtest/gtest.h>

#include "sched/list_scheduler.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::sched {
namespace {

struct BodySetup {
  trace::LoopBodyTrace body;
  Problem pr;
  std::vector<CarriedDep> carried;

  explicit BodySetup(MachineConfig cfg = {})
      : body(trace::build_loop_body_trace()), pr(build_problem(body.program, cfg)) {
    // The accumulator's five coordinates carry across iterations.
    std::vector<int> outs;
    for (const auto& [id, name] : body.program.outputs) {
      (void)name;
      outs.push_back(id);
    }
    carried = body_carried_deps(pr, body.q_inputs, outs);
  }
};

TEST(Modulo, LowerBoundsSane) {
  BodySetup s;
  ModuloResult r = modulo_schedule(s.pr, s.carried);
  ASSERT_TRUE(r.feasible);
  // 15 multiplications on one multiplier: ResMII = 15.
  EXPECT_EQ(r.res_mii, 15);
  // The accumulator recurrence bounds II from below too.
  EXPECT_GE(r.rec_mii, 10);
  EXPECT_GE(r.ii, std::max(r.res_mii, r.rec_mii));
}

TEST(Modulo, BeatsBlockScheduling) {
  // The whole point: II (cycles per iteration in steady state) beats the
  // block schedule's 25 cycles per iteration.
  BodySetup s;
  ModuloResult r = modulo_schedule(s.pr, s.carried);
  ASSERT_TRUE(r.feasible);
  Schedule block = list_schedule(s.pr);
  EXPECT_LT(r.ii, block.makespan);
}

TEST(Modulo, ValidatorAcceptsAndRejects) {
  BodySetup s;
  ModuloResult r = modulo_schedule(s.pr, s.carried);
  ASSERT_TRUE(r.feasible);
  std::string err;
  EXPECT_TRUE(check_modulo_schedule(s.pr, s.carried, r, &err)) << err;
  // Corrupt: pull one op to cycle 0.
  ModuloResult bad = r;
  for (size_t i = 0; i < bad.start.size(); ++i) {
    if (bad.start[i] > 0) {
      bad.start[i] = 0;
      break;
    }
  }
  EXPECT_FALSE(check_modulo_schedule(s.pr, s.carried, bad, &err));
}

TEST(Modulo, SecondMultiplierLowersResMii) {
  MachineConfig cfg;
  cfg.num_multipliers = 2;
  cfg.rf_read_ports = 8;
  cfg.rf_write_ports = 3;
  BodySetup s(cfg);
  ModuloResult r = modulo_schedule(s.pr, s.carried);
  ASSERT_TRUE(r.feasible);
  // With 2 multipliers the adder becomes the resource bound: 12 add/subs
  // on one unit (the multiplier bound drops from 15 to ceil(15/2) = 8).
  EXPECT_EQ(r.res_mii, 12);
  // Achieved II is at least the bound and better than without the second
  // multiplier.
  BodySetup single;
  ModuloResult r1 = modulo_schedule(single.pr, single.carried);
  EXPECT_GE(r.ii, std::max(r.res_mii, r.rec_mii));
  EXPECT_LE(r.ii, r1.ii);
}

TEST(Modulo, NoCarriedDepsGivesResourceBoundedII) {
  BodySetup s;
  ModuloResult r = modulo_schedule(s.pr, {});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.rec_mii, 1);
  EXPECT_EQ(r.ii, r.res_mii);
}

TEST(Modulo, DeeperPipelineRaisesRecurrenceBound) {
  MachineConfig deep;
  deep.mul_latency = 6;
  BodySetup shallow, deeper(deep);
  ModuloResult r1 = modulo_schedule(shallow.pr, shallow.carried);
  ModuloResult r2 = modulo_schedule(deeper.pr, deeper.carried);
  ASSERT_TRUE(r1.feasible && r2.feasible);
  EXPECT_GT(r2.rec_mii, r1.rec_mii);
}

TEST(Modulo, RejectsIterativeMultiplier) {
  MachineConfig cfg;
  cfg.mul_ii = 2;
  cfg.mul_latency = 4;
  BodySetup s(cfg);
  EXPECT_THROW(modulo_schedule(s.pr, s.carried), std::logic_error);
}

}  // namespace
}  // namespace fourq::sched
