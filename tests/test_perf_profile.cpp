// fourq.perf.v1 profile tests: span-path reconstruction, artifact
// round-trip, flamegraph folding, differential reports, and the perfctr
// sampling layer's degradation contract (hardware -> software ->
// unavailable must never turn into silent zeros).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/perf_profile.hpp"
#include "obs/perfctr.hpp"

namespace fourq {
namespace {

using obs::PerfAccum;
using obs::PerfProfile;
using obs::PerfSpanStat;
using obs::SpanRecord;

SpanRecord span(const char* name, int depth, int tid, uint64_t start_us,
                uint64_t dur_us) {
  SpanRecord s;
  s.name = name;
  s.depth = depth;
  s.tid = tid;
  s.start_us = start_us;
  s.dur_us = dur_us;
  return s;
}

SpanRecord hw_span(const char* name, int depth, int tid, uint64_t start_us,
                   uint64_t dur_us, uint64_t cycles, uint64_t instructions) {
  SpanRecord s = span(name, depth, tid, start_us, dur_us);
  s.has_perf = true;
  s.perf.cycles = cycles;
  s.perf.instructions = instructions;
  s.perf.cache_refs = 100;
  s.perf.cache_misses = 10;
  s.perf.source = obs::PerfSource::kHardware;
  return s;
}

// Two repetitions of run{phase_a, phase_b} on one thread, plus an unrelated
// top-level span on a second thread. Paths must be reconstructed per thread
// from begin order and depth.
std::vector<SpanRecord> two_rep_spans() {
  return {
      span("run", 0, 0, 0, 100),      span("phase_a", 1, 0, 10, 30),
      span("phase_b", 1, 0, 50, 40),  span("run", 0, 0, 200, 120),
      span("phase_a", 1, 0, 210, 34), span("phase_b", 1, 0, 250, 44),
      span("io", 0, 1, 5, 7),
  };
}

TEST(PerfAccum, StatsAndReconstruction) {
  PerfAccum a;
  for (double v : {10.0, 12.0, 14.0}) a.add(v);
  EXPECT_EQ(a.n, 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 12.0);
  EXPECT_NEAR(a.stddev(), 2.0, 1e-9);
  EXPECT_NEAR(a.stderr_mean(), 2.0 / std::sqrt(3.0), 1e-9);

  PerfAccum b = PerfAccum::from_stats(a.n, a.mean(), a.stddev());
  EXPECT_EQ(b.n, a.n);
  EXPECT_NEAR(b.mean(), a.mean(), 1e-9);
  EXPECT_NEAR(b.stddev(), a.stddev(), 1e-6);

  PerfAccum empty;
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(empty.stderr_mean(), 0.0);
}

TEST(PerfProfile, PathReconstructionAcrossThreads) {
  PerfProfile p = obs::build_perf_profile(two_rep_spans());
  ASSERT_EQ(p.spans.size(), 4u);  // sorted by path
  EXPECT_EQ(p.spans[0].path, "io");
  EXPECT_EQ(p.spans[1].path, "run");
  EXPECT_EQ(p.spans[2].path, "run;phase_a");
  EXPECT_EQ(p.spans[3].path, "run;phase_b");

  // Both repetitions aggregate into one path with noise statistics.
  const PerfSpanStat& a = p.spans[2];
  EXPECT_EQ(a.name, "phase_a");
  EXPECT_EQ(a.depth, 1);
  EXPECT_EQ(a.wall_us.n, 2u);
  EXPECT_DOUBLE_EQ(a.wall_us.mean(), 32.0);
  EXPECT_GT(a.wall_us.stddev(), 0.0);

  // No counters attached anywhere -> the artifact says so explicitly.
  EXPECT_EQ(p.counters, "unavailable");
  EXPECT_EQ(a.perf_n, 0u);
}

TEST(PerfProfile, HardwareCountersAggregate) {
  std::vector<SpanRecord> spans = {
      hw_span("run", 0, 0, 0, 100, 1000, 2000),
      hw_span("run", 0, 0, 200, 100, 3000, 6000),
  };
  PerfProfile p = obs::build_perf_profile(spans);
  EXPECT_EQ(p.counters, "hardware");
  ASSERT_EQ(p.spans.size(), 1u);
  const PerfSpanStat& s = p.spans[0];
  EXPECT_EQ(s.perf_n, 2u);
  EXPECT_DOUBLE_EQ(s.cycles.mean(), 2000.0);
  EXPECT_DOUBLE_EQ(s.ipc(), 2.0);  // 8000 instructions / 4000 cycles
  EXPECT_DOUBLE_EQ(s.cache_miss_rate(), 0.1);
}

TEST(PerfProfile, JsonRoundTrip) {
  std::vector<SpanRecord> spans = two_rep_spans();
  spans.push_back(hw_span("run", 0, 0, 400, 110, 5000, 9000));
  PerfProfile p = obs::build_perf_profile(spans);
  std::string doc = obs::perf_profile_json(p, "beef");

  // It is one well-formed JSON object with provenance.
  std::string jerr;
  obs::json::ValuePtr v = obs::json::parse(doc, &jerr);
  ASSERT_TRUE(jerr.empty()) << jerr;
  EXPECT_EQ(v->at("schema").string(), "fourq.perf.v1");
  EXPECT_EQ(v->at("provenance").at("machine_hash").string(), "beef");

  PerfProfile q;
  std::string err;
  ASSERT_TRUE(obs::parse_perf_profile(doc, &q, &err)) << err;
  EXPECT_EQ(q.counters, p.counters);
  ASSERT_EQ(q.spans.size(), p.spans.size());
  for (size_t i = 0; i < p.spans.size(); ++i) {
    EXPECT_EQ(q.spans[i].path, p.spans[i].path);
    EXPECT_EQ(q.spans[i].wall_us.n, p.spans[i].wall_us.n);
    EXPECT_NEAR(q.spans[i].wall_us.mean(), p.spans[i].wall_us.mean(), 1e-6);
    EXPECT_NEAR(q.spans[i].wall_us.stddev(), p.spans[i].wall_us.stddev(), 1e-3);
    EXPECT_EQ(q.spans[i].perf_n, p.spans[i].perf_n);
  }

  // Malformed input and wrong schema both fail with a message.
  PerfProfile bad;
  EXPECT_FALSE(obs::parse_perf_profile("{\"schema\":\"fourq.metrics.v1\"}", &bad, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(obs::parse_perf_profile("not json", &bad, &err));
}

TEST(PerfProfile, FoldedSelfTime) {
  PerfProfile p = obs::build_perf_profile(two_rep_spans());
  std::string folded = obs::perf_folded(p);

  // Each line is "path self_value"; `run` self time excludes its children:
  // total 220 - (64 + 84) = 72 us across the two repetitions.
  EXPECT_NE(folded.find("io 7"), std::string::npos);
  EXPECT_NE(folded.find("run 72"), std::string::npos);
  EXPECT_NE(folded.find("run;phase_a 64"), std::string::npos);
  EXPECT_NE(folded.find("run;phase_b 84"), std::string::npos);
  // Well-formed collapsed-stack lines: non-empty, exactly one trailing value.
  size_t pos = 0;
  int lines = 0;
  while (pos < folded.size()) {
    size_t nl = folded.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    std::string line = folded.substr(pos, nl - pos);
    pos = nl + 1;
    ++lines;
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(sp, 0u) << line;
  }
  EXPECT_EQ(lines, 4);
}

TEST(PerfDiff, AlignedDeltasAndNoise) {
  std::vector<SpanRecord> base_spans, cur_spans;
  // Same workload measured 3x each; phase_a doubles, phase_b is unchanged,
  // "gone" exists only in base and "new" only in current.
  for (int rep = 0; rep < 3; ++rep) {
    uint64_t t = 1000u * static_cast<unsigned>(rep);
    base_spans.push_back(span("phase_a", 0, 0, t, 100));
    base_spans.push_back(span("phase_b", 0, 0, t + 200, 50));
    base_spans.push_back(span("gone", 0, 0, t + 300, 10));
    cur_spans.push_back(span("phase_a", 0, 0, t, 200));
    cur_spans.push_back(span("phase_b", 0, 0, t + 300, 50));
    cur_spans.push_back(span("new", 0, 0, t + 400, 10));
  }
  PerfProfile base = obs::build_perf_profile(base_spans);
  PerfProfile cur = obs::build_perf_profile(cur_spans);

  obs::PerfDiffReport r = obs::perf_diff(base, cur);
  EXPECT_EQ(r.metric, "wall_us");  // no hardware counters on either side
  ASSERT_EQ(r.rows.size(), 4u);    // union of paths, sorted

  for (const obs::PerfDiffRow& row : r.rows) {
    if (row.path == "phase_a") {
      EXPECT_TRUE(row.in_base && row.in_current);
      EXPECT_NEAR(row.delta_pct, 100.0, 1e-9);
      EXPECT_TRUE(row.significant);  // zero variance -> zero noise
    } else if (row.path == "phase_b") {
      EXPECT_NEAR(row.delta_pct, 0.0, 1e-9);
      EXPECT_FALSE(row.significant);
    } else if (row.path == "gone") {
      EXPECT_TRUE(row.in_base);
      EXPECT_FALSE(row.in_current);
    } else if (row.path == "new") {
      EXPECT_FALSE(row.in_base);
      EXPECT_TRUE(row.in_current);
    } else {
      ADD_FAILURE() << "unexpected path " << row.path;
    }
  }

  // Text report names the metric and flags the regression.
  std::string text = obs::perf_diff_text(r);
  EXPECT_NE(text.find("phase_a"), std::string::npos);
  EXPECT_NE(text.find("SLOWER"), std::string::npos);
  EXPECT_NE(text.find("NEW"), std::string::npos);
  EXPECT_NE(text.find("GONE"), std::string::npos);

  // JSON report parses and carries the same verdicts.
  std::string jerr;
  obs::json::ValuePtr v = obs::json::parse(obs::perf_diff_json(r), &jerr);
  ASSERT_TRUE(jerr.empty()) << jerr;
  EXPECT_EQ(v->at("schema").string(), "fourq.perfdiff.v1");
  EXPECT_EQ(v->at("metric").string(), "wall_us");
  EXPECT_EQ(v->at("rows").arr.size(), 4u);

  // With hardware counters on both sides, the compared metric is cycles.
  PerfProfile hb = obs::build_perf_profile({hw_span("x", 0, 0, 0, 10, 100, 200)});
  PerfProfile hc = obs::build_perf_profile({hw_span("x", 0, 0, 0, 10, 150, 300)});
  obs::PerfDiffReport hr = obs::perf_diff(hb, hc);
  EXPECT_EQ(hr.metric, "cycles");
  ASSERT_EQ(hr.rows.size(), 1u);
  EXPECT_NEAR(hr.rows[0].delta_pct, 50.0, 1e-9);
}

TEST(PerfCtr, DeltaSaturatesAndDerivedRates) {
  obs::PerfSample a, b;
  a.cycles = 1000;
  a.instructions = 500;
  a.task_clock_ns = 10;
  a.source = obs::PerfSource::kHardware;
  b.cycles = 4000;
  b.instructions = 6500;
  b.task_clock_ns = 5;  // multiplex-scaling wobble: end < begin saturates to 0
  b.source = obs::PerfSource::kHardware;
  obs::PerfDelta d = obs::perf_delta(a, b);
  EXPECT_EQ(d.cycles, 3000u);
  EXPECT_EQ(d.instructions, 6000u);
  EXPECT_EQ(d.task_clock_ns, 0u);
  EXPECT_DOUBLE_EQ(d.ipc(), 2.0);
  EXPECT_EQ(d.source, obs::PerfSource::kHardware);

  // The delta's source is the weaker of the two samples.
  b.source = obs::PerfSource::kSoftware;
  EXPECT_EQ(obs::perf_delta(a, b).source, obs::PerfSource::kSoftware);

  EXPECT_STREQ(obs::perf_source_name(obs::PerfSource::kUnavailable), "unavailable");
  EXPECT_STREQ(obs::perf_source_name(obs::PerfSource::kSoftware), "software");
  EXPECT_STREQ(obs::perf_source_name(obs::PerfSource::kHardware), "hardware");
}

TEST(PerfCtr, DisabledSamplingReadsUnavailable) {
  obs::perf_set_enabled(false);
  obs::PerfSample s = obs::perf_read_thread();
  EXPECT_EQ(s.source, obs::PerfSource::kUnavailable);
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.task_clock_ns, 0u);
  EXPECT_FALSE(obs::perf_enabled());
}

TEST(PerfCtr, EnabledSamplingDegradesExplicitly) {
  if (!obs::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  obs::perf_set_enabled(true);
  obs::PerfSample first = obs::perf_read_thread();
  // Whatever the kernel allowed (hardware, software fallback, or nothing in
  // a locked-down container), the sample must say so and the per-thread
  // source must agree with it.
  EXPECT_EQ(first.source, obs::perf_thread_source());
  if (first.source == obs::PerfSource::kUnavailable) {
    obs::perf_set_enabled(false);
    GTEST_SKIP() << "perf_event_open unavailable here — degradation verified";
  }
  // Counters are cumulative: burn some CPU, read again, the clock advanced.
  volatile double sink = 1.0;
  for (int i = 0; i < 2000000; ++i) sink = sink * 1.0000001 + 1e-9;
  obs::PerfSample second = obs::perf_read_thread();
  obs::PerfDelta d = obs::perf_delta(first, second);
  EXPECT_NE(d.source, obs::PerfSource::kUnavailable);
  EXPECT_GT(d.task_clock_ns, 0u);
  if (first.source == obs::PerfSource::kHardware) {
    EXPECT_GT(d.cycles, 0u);
  }
  obs::perf_set_enabled(false);
}

}  // namespace
}  // namespace fourq
