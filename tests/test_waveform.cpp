// Tests for the VCD / DOT artifact exporters.
#include "asic/waveform.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/sm_trace.hpp"

namespace fourq::asic {
namespace {

sched::CompileResult compiled_body() {
  return sched::compile_program(trace::build_loop_body_trace().program, {});
}

TEST(Vcd, WellFormedHeaderAndTimesteps) {
  auto r = compiled_body();
  std::stringstream ss;
  write_vcd(r.sm, ss);
  std::string out = ss.str();
  EXPECT_NE(out.find("$timescale"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(out.find("mul_issue0"), std::string::npos);
  // One timestep marker per cycle plus the closing one.
  int hashes = 0;
  for (char c : out)
    if (c == '#') ++hashes;
  EXPECT_EQ(hashes, r.sm.cycles() + 1);
}

TEST(Vcd, IssueCountsMatchRom) {
  auto r = compiled_body();
  std::stringstream ss;
  write_vcd(r.sm, ss);
  std::string out = ss.str();
  // Count '1<code-of-mul_issue0>' occurrences: the declared code for the
  // first variable is '!'.
  int issues = 0;
  for (size_t i = 0; i + 1 < out.size(); ++i)
    if (out[i] == '1' && out[i + 1] == '!' && (i == 0 || out[i - 1] == '\n')) ++issues;
  int rom_issues = 0;
  for (const auto& w : r.sm.rom) rom_issues += static_cast<int>(w.mul.size());
  EXPECT_EQ(issues, rom_issues);
}

TEST(Dot, ContainsAllNodesAndEdges) {
  auto r = compiled_body();
  std::stringstream ss;
  write_dot(r.problem, r.schedule, ss);
  std::string out = ss.str();
  EXPECT_NE(out.find("digraph schedule"), std::string::npos);
  for (size_t i = 0; i < r.problem.nodes.size(); ++i)
    EXPECT_NE(out.find("n" + std::to_string(i) + " ["), std::string::npos) << i;
  // Edge count: consumer lists, deduplicated per (i, c) pair occurrence.
  size_t edges = 0;
  for (const auto& cons : r.problem.consumers) edges += cons.size();
  size_t arrows = 0;
  size_t pos = 0;
  while ((pos = out.find(" -> n", pos)) != std::string::npos) {
    ++arrows;
    pos += 5;
  }
  EXPECT_EQ(arrows, edges);
}

TEST(Dot, RanksFollowCycles) {
  auto r = compiled_body();
  std::stringstream ss;
  write_dot(r.problem, r.schedule, ss);
  std::string out = ss.str();
  EXPECT_NE(out.find("rank=same"), std::string::npos);
  EXPECT_NE(out.find("\"c0\""), std::string::npos);
}

}  // namespace
}  // namespace fourq::asic
