// Tests for wNAF recoding and interleaved multi-scalar multiplication.
#include "curve/multiscalar.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "curve/scalarmul.hpp"

namespace fourq::curve {
namespace {

__int128 small_value(const std::vector<int8_t>& naf) {
  __int128 acc = 0;
  for (int i = static_cast<int>(naf.size()) - 1; i >= 0; --i)
    acc = 2 * acc + naf[static_cast<size_t>(i)];
  return acc;
}

TEST(Wnaf, ReconstructsSmallValues) {
  for (uint64_t k = 0; k < 500; ++k) {
    for (int w : {2, 3, 4, 5}) {
      auto naf = wnaf(U256(k), w);
      EXPECT_EQ(small_value(naf), static_cast<__int128>(k)) << "k=" << k << " w=" << w;
    }
  }
}

TEST(Wnaf, DigitsAreOddAndBounded) {
  Rng rng(621);
  for (int iter = 0; iter < 50; ++iter) {
    U256 k = rng.next_u256();
    for (int w : {2, 3, 4}) {
      auto naf = wnaf(k, w);
      int bound = (1 << w) - 1;
      for (int8_t d : naf) {
        if (d == 0) continue;
        EXPECT_EQ(std::abs(d) % 2, 1);
        EXPECT_LE(std::abs(d), bound);
      }
    }
  }
}

TEST(Wnaf, NonAdjacency) {
  Rng rng(622);
  for (int iter = 0; iter < 50; ++iter) {
    U256 k = rng.next_u256();
    auto naf = wnaf(k, 3);
    for (size_t i = 0; i < naf.size(); ++i) {
      if (naf[i] == 0) continue;
      for (size_t j = i + 1; j < std::min(naf.size(), i + 3); ++j)
        EXPECT_EQ(naf[j], 0) << "digits " << i << " and " << j << " both non-zero";
    }
  }
}

TEST(Wnaf, MaxScalarNoOverflow) {
  U256 k(~0ull, ~0ull, ~0ull, ~0ull);
  auto naf = wnaf(k, 3);
  ASSERT_LE(naf.size(), 258u);
  // Reconstruct via U512 arithmetic to verify exactly.
  U512 acc;
  for (int i = static_cast<int>(naf.size()) - 1; i >= 0; --i) {
    acc = shl(acc, 1);
    int d = naf[static_cast<size_t>(i)];
    U512 t;
    if (d >= 0) {
      add(acc, U512(U256(static_cast<uint64_t>(d))), t);
    } else {
      sub(acc, U512(U256(static_cast<uint64_t>(-d))), t);
    }
    acc = t;
  }
  EXPECT_EQ(acc.lo256(), k);
  EXPECT_TRUE(acc.hi256().is_zero());
}

// The original wNAF construction (pre-limb-loop), kept verbatim as the
// reference for property-testing the rewritten digit loop: it works in
// U512 so negative digits can carry past bit 255.
std::vector<int8_t> wnaf_reference(const U256& k, int width) {
  std::vector<int8_t> digits;
  U512 n(k);
  const uint64_t window = uint64_t{1} << width;
  const uint64_t half = window / 2;
  while (!n.is_zero()) {
    int8_t d = 0;
    if (n.bit(0)) {
      uint64_t mods = n.w[0] & (window - 1);
      U512 t;
      if (mods >= half) {
        d = static_cast<int8_t>(static_cast<int64_t>(mods) - static_cast<int64_t>(window));
        uint64_t carry = add(n, U512(U256(static_cast<uint64_t>(-static_cast<int64_t>(d)))), t);
        FOURQ_CHECK(carry == 0);
      } else {
        d = static_cast<int8_t>(mods);
        uint64_t borrow = sub(n, U512(U256(mods)), t);
        FOURQ_CHECK(borrow == 0);
      }
      n = t;
    }
    digits.push_back(d);
    n = shr(n, 1);
  }
  return digits;
}

TEST(Wnaf, MatchesReferenceConstruction) {
  std::vector<U256> edges = {
      U256(),                                // 0 -> empty digit string
      U256(1),
      U256(2),
      U256(~0ull, ~0ull, ~0ull, ~0ull),      // 2^256 - 1 (max carry pressure)
      U256(~0ull - 1, ~0ull, ~0ull, ~0ull),  // 2^256 - 2
      U256(0, 0, 0, uint64_t{1} << 63),      // 2^255
      U256(0, 0, 0, 1),                      // 2^192 (limb boundary)
      U256(0, 1, 0, 0),                      // 2^64
      U256(~0ull, 0, 0, 0),                  // 2^64 - 1
  };
  for (const U256& k : edges)
    for (int w = 2; w <= 7; ++w)
      EXPECT_EQ(wnaf(k, w), wnaf_reference(k, w)) << "w=" << w;
  Rng rng(626);
  for (int iter = 0; iter < 200; ++iter) {
    U256 k = rng.next_u256();
    for (int w = 2; w <= 7; ++w)
      EXPECT_EQ(wnaf(k, w), wnaf_reference(k, w)) << "w=" << w;
  }
}

TEST(MultiScalar, SingleTermMatchesScalarMul) {
  Rng rng(623);
  Affine p = deterministic_point(61);
  for (int i = 0; i < 8; ++i) {
    U256 k = rng.next_u256();
    EXPECT_TRUE(equal(multi_scalar_mul({{k, p}}), scalar_mul(k, p)));
  }
}

TEST(MultiScalar, TwoTermsMatchSum) {
  Rng rng(624);
  Affine p = deterministic_point(62), q = deterministic_point(63);
  for (int i = 0; i < 6; ++i) {
    U256 a = rng.next_u256(), b = rng.next_u256();
    PointR1 expect = add(scalar_mul(a, p), to_r2(scalar_mul(b, q)));
    EXPECT_TRUE(equal(multi_scalar_mul({{a, p}, {b, q}}), expect));
  }
}

TEST(MultiScalar, ManyTerms) {
  Rng rng(625);
  std::vector<ScalarPoint> terms;
  PointR1 expect = identity();
  for (int i = 0; i < 9; ++i) {
    Affine p = deterministic_point(static_cast<uint64_t>(70 + i));
    U256 k = rng.next_u256();
    terms.push_back({k, p});
    expect = add(expect, to_r2(scalar_mul(k, p)));
  }
  EXPECT_TRUE(equal(multi_scalar_mul(terms), expect));
}

TEST(MultiScalar, ZeroScalarsIgnored) {
  Affine p = deterministic_point(64), q = deterministic_point(65);
  U256 k(777);
  EXPECT_TRUE(equal(multi_scalar_mul({{U256(), p}, {k, q}}), scalar_mul(k, q)));
  EXPECT_TRUE(is_identity(multi_scalar_mul({{U256(), p}})));
  EXPECT_TRUE(is_identity(multi_scalar_mul({})));
}

TEST(MultiScalar, RepeatedPointAggregates) {
  Affine p = deterministic_point(66);
  // [3]P + [5]P == [8]P
  EXPECT_TRUE(equal(multi_scalar_mul({{U256(3), p}, {U256(5), p}}), scalar_mul(U256(8), p)));
}

TEST(MultiScalar, CancellationToIdentity) {
  Affine p = deterministic_point(67);
  Affine np = neg(p);
  U256 k(0xabcdef);
  EXPECT_TRUE(is_identity(multi_scalar_mul({{k, p}, {k, np}})));
}

// ---------------------------------------------------------------------------
// Backend matrix: every explicit backend must match the naive sum and, after
// normalisation, agree with every other backend bit for bit.

constexpr MsmBackend kAllBackends[] = {MsmBackend::kStraus, MsmBackend::kPippenger,
                                       MsmBackend::kEndoSplit, MsmBackend::kAuto};

PointR1 naive_msm(const std::vector<ScalarPoint>& terms) {
  PointR1 acc = identity();
  for (const ScalarPoint& t : terms) acc = add(acc, to_r2(scalar_mul(t.k, t.p)));
  return acc;
}

std::vector<ScalarPoint> random_terms(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ScalarPoint> terms;
  terms.reserve(n);
  for (size_t i = 0; i < n; ++i)
    terms.push_back({rng.next_u256(), deterministic_point(100 + i)});
  return terms;
}

TEST(MsmBackends, AgreeWithNaiveSumAcrossSizes) {
  // n straddles both crossovers: 0/1/2 (degenerate + Straus), 33 (Straus
  // with width 5), 257 (Pippenger territory).
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{33}, size_t{257}}) {
    std::vector<ScalarPoint> terms = random_terms(n, 0x700 + n);
    Affine expect = to_affine(naive_msm(terms));
    for (MsmBackend b : kAllBackends) {
      MsmOptions opts;
      opts.backend = b;
      Affine got = to_affine(multi_scalar_mul(terms, opts));
      EXPECT_TRUE(got.x == expect.x && got.y == expect.y)
          << "n=" << n << " backend=" << msm_backend_name(b);
    }
  }
}

TEST(MsmBackends, ZeroScalarsAndIdentityPointsEverywhere) {
  Affine id{Fp2(), Fp2::from_u64(1)};
  Rng rng(627);
  std::vector<ScalarPoint> terms;
  PointR1 expect = identity();
  for (size_t i = 0; i < 12; ++i) {
    if (i % 3 == 0) {
      terms.push_back({U256(), deterministic_point(200 + i)});  // zero scalar
    } else if (i % 3 == 1) {
      terms.push_back({rng.next_u256(), id});  // identity point
    } else {
      U256 k = rng.next_u256();
      Affine p = deterministic_point(200 + i);
      terms.push_back({k, p});
      expect = add(expect, to_r2(scalar_mul(k, p)));
    }
  }
  for (MsmBackend b : kAllBackends) {
    MsmOptions opts;
    opts.backend = b;
    EXPECT_TRUE(equal(multi_scalar_mul(terms, opts), expect)) << msm_backend_name(b);
  }
  // All-degenerate input collapses to the identity on every backend.
  std::vector<ScalarPoint> degenerate = {{U256(), deterministic_point(220)}, {U256(42), id}};
  for (MsmBackend b : kAllBackends) {
    MsmOptions opts;
    opts.backend = b;
    EXPECT_TRUE(is_identity(multi_scalar_mul(degenerate, opts))) << msm_backend_name(b);
  }
}

TEST(MsmBackends, HalfLengthBitsHint) {
  // Terms declared at 128 bits (the batch-verification weight shape) must
  // give the same point as the default 256-bit declaration.
  Rng rng(628);
  std::vector<ScalarPoint> shortened, full;
  for (size_t i = 0; i < 40; ++i) {
    U256 k(rng.next_u64(), rng.next_u64(), 0, 0);
    Affine p = deterministic_point(300 + i);
    shortened.push_back({k, p, 128});
    full.push_back({k, p});
  }
  Affine expect = to_affine(naive_msm(full));
  for (MsmBackend b : kAllBackends) {
    MsmOptions opts;
    opts.backend = b;
    Affine got = to_affine(multi_scalar_mul(shortened, opts));
    EXPECT_TRUE(got.x == expect.x && got.y == expect.y) << msm_backend_name(b);
  }
}

TEST(MsmBackends, OverdeclaredScalarIsRejected) {
  // The bits field is a contract: a scalar exceeding its declared length
  // must trip the runtime check rather than silently truncate.
  std::vector<ScalarPoint> bad = {{U256(0, 0, 1, 0), deterministic_point(68), 128}};
  EXPECT_THROW(multi_scalar_mul(bad), std::logic_error);
}

TEST(MsmBackends, ExplicitWindowOverrides) {
  std::vector<ScalarPoint> terms = random_terms(20, 0x900);
  Affine expect = to_affine(naive_msm(terms));
  for (int c : {2, 6, 13}) {
    MsmOptions opts;
    opts.backend = MsmBackend::kPippenger;
    opts.window = c;
    Affine got = to_affine(multi_scalar_mul(terms, opts));
    EXPECT_TRUE(got.x == expect.x && got.y == expect.y) << "window=" << c;
  }
  for (int w : {2, 7}) {
    MsmOptions opts;
    opts.backend = MsmBackend::kStraus;
    opts.straus_width = w;
    Affine got = to_affine(multi_scalar_mul(terms, opts));
    EXPECT_TRUE(got.x == expect.x && got.y == expect.y) << "width=" << w;
  }
}

TEST(MsmBackends, ParallelExecutionIsBitwiseStable) {
  // Window sums are combined in a fixed order, so the projective result —
  // not just the point it represents — must be identical whether windows
  // run sequentially or on as many threads as the executor offers.
  std::vector<ScalarPoint> terms = random_terms(150, 0xa00);
  MsmOptions serial;
  serial.backend = MsmBackend::kPippenger;
  PointR1 want = multi_scalar_mul(terms, serial);

  std::atomic<size_t> calls{0};
  MsmOptions parallel = serial;
  parallel.parallel = [&calls](size_t n, const std::function<void(size_t)>& fn) {
    calls.fetch_add(1);
    std::vector<std::thread> pool;
    std::atomic<size_t> next{0};
    for (unsigned t = 0; t < 4; ++t)
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
      });
    for (auto& th : pool) th.join();
  };
  PointR1 got = multi_scalar_mul(terms, parallel);
  EXPECT_GT(calls.load(), 0u) << "parallel hook never invoked";
  EXPECT_EQ(got.X, want.X);
  EXPECT_EQ(got.Y, want.Y);
  EXPECT_EQ(got.Z, want.Z);
  EXPECT_EQ(got.Ta, want.Ta);
  EXPECT_EQ(got.Tb, want.Tb);
}

TEST(MsmBackends, AutoCrossoverAndNames) {
  EXPECT_EQ(msm_choose_backend(1), MsmBackend::kStraus);
  EXPECT_EQ(msm_choose_backend(2), MsmBackend::kStraus);
  EXPECT_EQ(msm_choose_backend(4096), MsmBackend::kPippenger);
  MsmOptions forced;
  forced.backend = MsmBackend::kEndoSplit;
  EXPECT_EQ(msm_choose_backend(4096, forced), MsmBackend::kEndoSplit);
  EXPECT_STREQ(msm_backend_name(MsmBackend::kStraus), "straus");
  EXPECT_STREQ(msm_backend_name(MsmBackend::kPippenger), "pippenger");
  EXPECT_STREQ(msm_backend_name(MsmBackend::kEndoSplit), "endosplit");
}

}  // namespace
}  // namespace fourq::curve
