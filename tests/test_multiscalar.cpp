// Tests for wNAF recoding and interleaved multi-scalar multiplication.
#include "curve/multiscalar.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "curve/scalarmul.hpp"

namespace fourq::curve {
namespace {

__int128 small_value(const std::vector<int8_t>& naf) {
  __int128 acc = 0;
  for (int i = static_cast<int>(naf.size()) - 1; i >= 0; --i)
    acc = 2 * acc + naf[static_cast<size_t>(i)];
  return acc;
}

TEST(Wnaf, ReconstructsSmallValues) {
  for (uint64_t k = 0; k < 500; ++k) {
    for (int w : {2, 3, 4, 5}) {
      auto naf = wnaf(U256(k), w);
      EXPECT_EQ(small_value(naf), static_cast<__int128>(k)) << "k=" << k << " w=" << w;
    }
  }
}

TEST(Wnaf, DigitsAreOddAndBounded) {
  Rng rng(621);
  for (int iter = 0; iter < 50; ++iter) {
    U256 k = rng.next_u256();
    for (int w : {2, 3, 4}) {
      auto naf = wnaf(k, w);
      int bound = (1 << w) - 1;
      for (int8_t d : naf) {
        if (d == 0) continue;
        EXPECT_EQ(std::abs(d) % 2, 1);
        EXPECT_LE(std::abs(d), bound);
      }
    }
  }
}

TEST(Wnaf, NonAdjacency) {
  Rng rng(622);
  for (int iter = 0; iter < 50; ++iter) {
    U256 k = rng.next_u256();
    auto naf = wnaf(k, 3);
    for (size_t i = 0; i < naf.size(); ++i) {
      if (naf[i] == 0) continue;
      for (size_t j = i + 1; j < std::min(naf.size(), i + 3); ++j)
        EXPECT_EQ(naf[j], 0) << "digits " << i << " and " << j << " both non-zero";
    }
  }
}

TEST(Wnaf, MaxScalarNoOverflow) {
  U256 k(~0ull, ~0ull, ~0ull, ~0ull);
  auto naf = wnaf(k, 3);
  ASSERT_LE(naf.size(), 258u);
  // Reconstruct via U512 arithmetic to verify exactly.
  U512 acc;
  for (int i = static_cast<int>(naf.size()) - 1; i >= 0; --i) {
    acc = shl(acc, 1);
    int d = naf[static_cast<size_t>(i)];
    U512 t;
    if (d >= 0) {
      add(acc, U512(U256(static_cast<uint64_t>(d))), t);
    } else {
      sub(acc, U512(U256(static_cast<uint64_t>(-d))), t);
    }
    acc = t;
  }
  EXPECT_EQ(acc.lo256(), k);
  EXPECT_TRUE(acc.hi256().is_zero());
}

TEST(MultiScalar, SingleTermMatchesScalarMul) {
  Rng rng(623);
  Affine p = deterministic_point(61);
  for (int i = 0; i < 8; ++i) {
    U256 k = rng.next_u256();
    EXPECT_TRUE(equal(multi_scalar_mul({{k, p}}), scalar_mul(k, p)));
  }
}

TEST(MultiScalar, TwoTermsMatchSum) {
  Rng rng(624);
  Affine p = deterministic_point(62), q = deterministic_point(63);
  for (int i = 0; i < 6; ++i) {
    U256 a = rng.next_u256(), b = rng.next_u256();
    PointR1 expect = add(scalar_mul(a, p), to_r2(scalar_mul(b, q)));
    EXPECT_TRUE(equal(multi_scalar_mul({{a, p}, {b, q}}), expect));
  }
}

TEST(MultiScalar, ManyTerms) {
  Rng rng(625);
  std::vector<ScalarPoint> terms;
  PointR1 expect = identity();
  for (int i = 0; i < 9; ++i) {
    Affine p = deterministic_point(static_cast<uint64_t>(70 + i));
    U256 k = rng.next_u256();
    terms.push_back({k, p});
    expect = add(expect, to_r2(scalar_mul(k, p)));
  }
  EXPECT_TRUE(equal(multi_scalar_mul(terms), expect));
}

TEST(MultiScalar, ZeroScalarsIgnored) {
  Affine p = deterministic_point(64), q = deterministic_point(65);
  U256 k(777);
  EXPECT_TRUE(equal(multi_scalar_mul({{U256(), p}, {k, q}}), scalar_mul(k, q)));
  EXPECT_TRUE(is_identity(multi_scalar_mul({{U256(), p}})));
  EXPECT_TRUE(is_identity(multi_scalar_mul({})));
}

TEST(MultiScalar, RepeatedPointAggregates) {
  Affine p = deterministic_point(66);
  // [3]P + [5]P == [8]P
  EXPECT_TRUE(equal(multi_scalar_mul({{U256(3), p}, {U256(5), p}}), scalar_mul(U256(8), p)));
}

TEST(MultiScalar, CancellationToIdentity) {
  Affine p = deterministic_point(67);
  Affine np = neg(p);
  U256 k(0xabcdef);
  EXPECT_TRUE(is_identity(multi_scalar_mul({{k, p}, {k, np}})));
}

}  // namespace
}  // namespace fourq::curve
