// Unit tests for Montgomery arithmetic and modular inversion.
#include "common/modint.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fourq {
namespace {

// Moduli that matter in this repository.
const char* kP256Field = "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
const char* kP256Order = "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";
const char* kC25519Field = "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed";

class MontyParam : public ::testing::TestWithParam<const char*> {};

TEST_P(MontyParam, RoundTripConversion) {
  Monty mt(U256::from_hex(GetParam()));
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    U256 a = mod(rng.next_u256(), mt.modulus());
    EXPECT_EQ(mt.from_monty(mt.to_monty(a)), a);
  }
}

TEST_P(MontyParam, MulMatchesSchoolbookMod) {
  Monty mt(U256::from_hex(GetParam()));
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    U256 a = mod(rng.next_u256(), mt.modulus());
    U256 b = mod(rng.next_u256(), mt.modulus());
    U256 expect = mod(mul_wide(a, b), mt.modulus());
    U256 got = mt.from_monty(mt.mul(mt.to_monty(a), mt.to_monty(b)));
    EXPECT_EQ(got, expect);
  }
}

TEST_P(MontyParam, FieldAxioms) {
  Monty mt(U256::from_hex(GetParam()));
  Rng rng(13);
  U256 one = mt.one();
  for (int i = 0; i < 50; ++i) {
    U256 a = mt.to_monty(mod(rng.next_u256(), mt.modulus()));
    U256 b = mt.to_monty(mod(rng.next_u256(), mt.modulus()));
    U256 c = mt.to_monty(mod(rng.next_u256(), mt.modulus()));
    EXPECT_EQ(mt.mul(a, b), mt.mul(b, a));
    EXPECT_EQ(mt.mul(a, mt.mul(b, c)), mt.mul(mt.mul(a, b), c));
    EXPECT_EQ(mt.mul(a, one), a);
    EXPECT_EQ(mt.mul(a, mt.add(b, c)), mt.add(mt.mul(a, b), mt.mul(a, c)));
    EXPECT_EQ(mt.add(a, mt.neg(a)), U256());
  }
}

TEST_P(MontyParam, InverseIsInverse) {
  Monty mt(U256::from_hex(GetParam()));
  Rng rng(14);
  for (int i = 0; i < 50; ++i) {
    U256 a = mt.to_monty(rng.next_mod_nonzero(mt.modulus()));
    EXPECT_EQ(mt.mul(a, mt.inv(a)), mt.one());
  }
}

TEST_P(MontyParam, PowMatchesRepeatedMul) {
  Monty mt(U256::from_hex(GetParam()));
  Rng rng(15);
  U256 a = mt.to_monty(rng.next_mod_nonzero(mt.modulus()));
  U256 acc = mt.one();
  for (uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(mt.pow(a, U256(e)), acc);
    acc = mt.mul(acc, a);
  }
}

TEST_P(MontyParam, FermatLittleTheorem) {
  // All three moduli are prime: a^(m-1) == 1.
  Monty mt(U256::from_hex(GetParam()));
  Rng rng(16);
  U256 m_minus_1;
  sub(mt.modulus(), U256(1), m_minus_1);
  for (int i = 0; i < 10; ++i) {
    U256 a = mt.to_monty(rng.next_mod_nonzero(mt.modulus()));
    EXPECT_EQ(mt.pow(a, m_minus_1), mt.one());
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, MontyParam,
                         ::testing::Values(kP256Field, kP256Order, kC25519Field));

TEST(Invmod, SmallKnownValues) {
  // 3^{-1} mod 7 == 5
  EXPECT_EQ(invmod(U256(3), U256(7)), U256(5));
  // 2^{-1} mod 9 == 5
  EXPECT_EQ(invmod(U256(2), U256(9)), U256(5));
  EXPECT_EQ(invmod(U256(1), U256(9)), U256(1));
}

TEST(Invmod, RandomRoundTrip) {
  Rng rng(17);
  U256 m = U256::from_hex(kP256Order);
  for (int i = 0; i < 50; ++i) {
    U256 a = rng.next_mod_nonzero(m);
    U256 ai = invmod(a, m);
    EXPECT_EQ(mod(mul_wide(a, ai), m), U256(1));
  }
}

TEST(Invmod, WorksWithUnreducedInput) {
  U256 m(101);
  EXPECT_EQ(invmod(U256(3 + 101 * 7), m), invmod(U256(3), m));
}

TEST(Monty, RejectsEvenModulus) {
  EXPECT_THROW(Monty(U256(100)), std::logic_error);
}

}  // namespace
}  // namespace fourq
