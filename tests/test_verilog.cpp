// Tests for the Verilog/ROM-image export: the packed control-word format
// must round-trip exactly, and the emitted RTL skeleton must be
// structurally sound.
#include "asic/verilog.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "asic/romfile.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace fourq::asic {
namespace {

bool src_equal(const sched::SrcSel& a, const sched::SrcSel& b) {
  return a.kind == b.kind && a.reg == b.reg && a.map == b.map && a.iter == b.iter &&
         a.unit == b.unit;
}

bool word_equal(const sched::CtrlWord& a, const sched::CtrlWord& b) {
  if (a.mul.size() != b.mul.size() || a.addsub.size() != b.addsub.size() ||
      a.writebacks.size() != b.writebacks.size())
    return false;
  for (size_t i = 0; i < a.mul.size(); ++i)
    if (a.mul[i].unit != b.mul[i].unit || !src_equal(a.mul[i].a, b.mul[i].a) ||
        !src_equal(a.mul[i].b, b.mul[i].b))
      return false;
  for (size_t i = 0; i < a.addsub.size(); ++i)
    if (a.addsub[i].op != b.addsub[i].op || a.addsub[i].unit != b.addsub[i].unit ||
        !src_equal(a.addsub[i].a, b.addsub[i].a) || !src_equal(a.addsub[i].b, b.addsub[i].b))
      return false;
  for (size_t i = 0; i < a.writebacks.size(); ++i)
    if (a.writebacks[i].reg != b.writebacks[i].reg ||
        a.writebacks[i].from_mul != b.writebacks[i].from_mul ||
        a.writebacks[i].unit != b.writebacks[i].unit)
      return false;
  return true;
}

TEST(PackedRom, RoundTripsLoopBody) {
  sched::CompileResult r = sched::compile_program(trace::build_loop_body_trace().program, {});
  PackedRom rom = pack_rom(r.sm);
  ASSERT_EQ(static_cast<int>(rom.words.size()), r.sm.cycles());
  for (int t = 0; t < r.sm.cycles(); ++t) {
    sched::CtrlWord back = unpack_word(rom, r.sm.cfg, t);
    EXPECT_TRUE(word_equal(back, r.sm.rom[static_cast<size_t>(t)])) << "cycle " << t;
  }
}

TEST(PackedRom, RoundTripsFullSmWithSelects) {
  trace::SmTraceOptions topt;
  topt.endo = trace::EndoVariant::kPaperCost;
  sched::CompileResult r = sched::compile_program(trace::build_sm_trace(topt).program, {});
  PackedRom rom = pack_rom(r.sm);
  for (int t = 0; t < r.sm.cycles(); t += 7) {
    sched::CtrlWord back = unpack_word(rom, r.sm.cfg, t);
    EXPECT_TRUE(word_equal(back, r.sm.rom[static_cast<size_t>(t)])) << "cycle " << t;
  }
}

TEST(PackedRom, RoundTripsDualUnitConfig) {
  sched::CompileOptions copt;
  copt.cfg.num_multipliers = 2;
  copt.cfg.num_addsubs = 2;
  copt.cfg.rf_read_ports = 8;
  copt.cfg.rf_write_ports = 4;
  sched::CompileResult r =
      sched::compile_program(trace::build_loop_body_trace().program, copt);
  PackedRom rom = pack_rom(r.sm);
  for (int t = 0; t < r.sm.cycles(); ++t) {
    sched::CtrlWord back = unpack_word(rom, r.sm.cfg, t);
    EXPECT_TRUE(word_equal(back, r.sm.rom[static_cast<size_t>(t)])) << "cycle " << t;
  }
}

TEST(Verilog, SkeletonStructurallySound) {
  sched::CompileResult r = sched::compile_program(trace::build_loop_body_trace().program, {});
  std::string v = emit_verilog(r.sm, "sm_unit");
  EXPECT_NE(v.find("module sm_unit"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("localparam ROM_WORDS = " + std::to_string(r.sm.cycles())),
            std::string::npos);
  // One rom[] initialisation per cycle.
  size_t count = 0, pos = 0;
  while ((pos = v.find("rom[", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  // rom[...] appears once per word in the initial block plus twice in
  // declarations/sequencer.
  EXPECT_GE(count, static_cast<size_t>(r.sm.cycles()));
}

TEST(Verilog, WordBitsMatchLayout) {
  sched::CompileResult r = sched::compile_program(trace::build_loop_body_trace().program, {});
  PackedRom rom = pack_rom(r.sm);
  // 1 mul slot (63) + 1 addsub slot (65) + 2 wb slots (12 each) = 152.
  EXPECT_EQ(rom.word_bits, 63 + 65 + 2 * 12);
}

}  // namespace
}  // namespace fourq::asic
