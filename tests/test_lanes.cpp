// Lane-parallel execution: the vector Fp/Fp2 batch kernels differentially
// against the scalar field operators (every compiled-in dispatch table, 10k
// random inputs plus boundary operands incl. p-1), the SoA lane executor
// against the reference simulator for every wave width, ragged tails and
// mixed preloads, and the strip-parallel batch inversion.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "asic/simulator.hpp"
#include "common/rng.hpp"
#include "curve/point.hpp"
#include "curve/scalar.hpp"
#include "engine/batch.hpp"
#include "engine/lanes.hpp"
#include "field/fp2.hpp"
#include "field/fp_lanes.hpp"

namespace fourq {
namespace {

namespace lk = field::lanes;
using field::Fp;
using field::Fp2;

u128 p_minus(uint64_t k) { return Fp::P() - k; }

// Deterministic operand stream: random canonical values with the boundary
// operands (0, 1, p-1, 2^64 +/- 1, ...) planted pairwise at the front.
std::vector<u128> operand_stream(size_t n, uint64_t seed, size_t phase) {
  const u128 bnd[] = {0,
                      1,
                      2,
                      p_minus(1),
                      p_minus(2),
                      (u128(1) << 64) - 1,
                      (u128(1) << 64),
                      (u128(1) << 64) + 1,
                      (u128(1) << 126)};
  constexpr size_t kB = sizeof(bnd) / sizeof(bnd[0]);
  Rng rng(seed);
  std::vector<u128> v(n);
  for (size_t i = 0; i < n; ++i) {
    U256 r = rng.next_u256();
    u128 x = (u128(r.w[1]) << 64) | r.w[0];
    x &= (u128(1) << 127) - 1;
    if (x >= Fp::P()) x -= Fp::P();
    v[i] = x;
  }
  // Pairwise boundary coverage: stream "phase" strides the second index so
  // (a, b) streams built with phases 0/1 cover every boundary pair.
  for (size_t i = 0; i < kB * kB && i < n; ++i)
    v[i] = bnd[phase == 0 ? i % kB : i / kB];
  return v;
}

std::vector<const lk::Kernels*> compiled_tables() {
  std::vector<const lk::Kernels*> t{&lk::generic_kernels()};
  if (lk::avx2_supported()) t.push_back(&lk::avx2_kernels());
  if (lk::avx512_supported()) t.push_back(&lk::avx512_kernels());
  return t;
}

TEST(LaneKernelsTest, FpKernelsMatchScalarOperators) {
  constexpr size_t N = 10007;  // odd: every table exercises its ragged tail
  std::vector<u128> a = operand_stream(N, 11, 0);
  std::vector<u128> b = operand_stream(N, 22, 1);
  std::vector<u128> r(N), r2(N);
  std::vector<U256> w(N);
  for (const lk::Kernels* k : compiled_tables()) {
    SCOPED_TRACE(k->name);
    k->fp_mul(a.data(), b.data(), r.data(), N);
    k->mul_wide(a.data(), b.data(), w.data(), N);
    k->reduce_wide(w.data(), r2.data(), N);
    for (size_t i = 0; i < N; ++i) {
      const u128 want =
          (Fp::from_canonical(a[i]) * Fp::from_canonical(b[i])).raw();
      ASSERT_EQ(r[i], want) << "fp_mul lane " << i;
      ASSERT_EQ(r2[i], want) << "mul_wide+reduce_wide lane " << i;
    }
    k->sqr_wide(a.data(), w.data(), N);
    k->reduce_wide(w.data(), r.data(), N);
    for (size_t i = 0; i < N; ++i) {
      const Fp ai = Fp::from_canonical(a[i]);
      ASSERT_EQ(r[i], (ai * ai).raw()) << "sqr_wide lane " << i;
    }
  }
}

TEST(LaneKernelsTest, Fp2KernelsMatchScalarOperators) {
  constexpr size_t N = 10007;
  std::vector<u128> are = operand_stream(N, 31, 0);
  std::vector<u128> aim = operand_stream(N, 32, 1);
  std::vector<u128> bre = operand_stream(N, 33, 1);
  std::vector<u128> bim = operand_stream(N, 34, 0);
  std::vector<u128> r1(N), r2(N);
  for (const lk::Kernels* k : compiled_tables()) {
    SCOPED_TRACE(k->name);
    struct Case {
      const char* what;
      Fp2 (*scalar)(const Fp2&, const Fp2&);
    };
    k->fp2_mul(are.data(), aim.data(), bre.data(), bim.data(), r1.data(),
               r2.data(), N);
    for (size_t i = 0; i < N; ++i) {
      const Fp2 want = lk::join(are[i], aim[i]) * lk::join(bre[i], bim[i]);
      ASSERT_EQ(r1[i], want.re().raw()) << "fp2_mul re lane " << i;
      ASSERT_EQ(r2[i], want.im().raw()) << "fp2_mul im lane " << i;
    }
    k->fp2_add(are.data(), aim.data(), bre.data(), bim.data(), r1.data(),
               r2.data(), N);
    for (size_t i = 0; i < N; ++i) {
      const Fp2 want = lk::join(are[i], aim[i]) + lk::join(bre[i], bim[i]);
      ASSERT_EQ(r1[i], want.re().raw()) << "fp2_add re lane " << i;
      ASSERT_EQ(r2[i], want.im().raw()) << "fp2_add im lane " << i;
    }
    k->fp2_sub(are.data(), aim.data(), bre.data(), bim.data(), r1.data(),
               r2.data(), N);
    for (size_t i = 0; i < N; ++i) {
      const Fp2 want = lk::join(are[i], aim[i]) - lk::join(bre[i], bim[i]);
      ASSERT_EQ(r1[i], want.re().raw()) << "fp2_sub re lane " << i;
      ASSERT_EQ(r2[i], want.im().raw()) << "fp2_sub im lane " << i;
    }
    k->fp2_conj(are.data(), aim.data(), r1.data(), r2.data(), N);
    for (size_t i = 0; i < N; ++i) {
      const Fp2 want = lk::join(are[i], aim[i]).conj();
      ASSERT_EQ(r1[i], want.re().raw()) << "fp2_conj re lane " << i;
      ASSERT_EQ(r2[i], want.im().raw()) << "fp2_conj im lane " << i;
    }
  }
}

TEST(LaneKernelsTest, RaggedAndAliasedCalls) {
  // Every n in [1, 17] (straddling both vector widths), results written
  // over the inputs — the elementwise-aliasing case the contract allows.
  std::vector<u128> are = operand_stream(17, 41, 0);
  std::vector<u128> aim = operand_stream(17, 42, 1);
  std::vector<u128> bre = operand_stream(17, 43, 0);
  std::vector<u128> bim = operand_stream(17, 44, 1);
  for (const lk::Kernels* k : compiled_tables()) {
    SCOPED_TRACE(k->name);
    for (size_t n = 1; n <= 17; ++n) {
      std::vector<u128> xre(are.begin(), are.begin() + n);
      std::vector<u128> xim(aim.begin(), aim.begin() + n);
      k->fp2_mul(xre.data(), xim.data(), bre.data(), bim.data(), xre.data(),
                 xim.data(), n);
      for (size_t i = 0; i < n; ++i) {
        const Fp2 want = lk::join(are[i], aim[i]) * lk::join(bre[i], bim[i]);
        ASSERT_EQ(xre[i], want.re().raw()) << "n=" << n << " lane " << i;
        ASSERT_EQ(xim[i], want.im().raw()) << "n=" << n << " lane " << i;
      }
    }
  }
}

TEST(LaneKernelsTest, DispatchHonorsEnvOverride) {
  // active() resolves once per process, so spawn nothing: just check the
  // compiled-in tables expose distinct names and the active one is among
  // them (the generic-only CI leg sees exactly {"generic"}).
  std::vector<const lk::Kernels*> tables = compiled_tables();
  bool found = false;
  for (const lk::Kernels* k : tables)
    if (std::string(k->name) == lk::active().name) found = true;
  EXPECT_TRUE(found) << "active table " << lk::active().name
                     << " not in the compiled-in set";
}

// --- lane executor vs the reference simulator ------------------------------

engine::CompileKey functional_key() {
  engine::CompileKey key;
  key.kind = engine::ProgramKind::kSingleSm;
  key.trace.endo = trace::EndoVariant::kFunctional;
  return key;
}

trace::InputBindings bindings_for(const engine::CompiledProgram& p,
                                  const curve::Affine& base) {
  trace::InputBindings b;
  b.emplace_back(p.in_zero, Fp2());
  b.emplace_back(p.in_one, Fp2::from_u64(1));
  b.emplace_back(p.in_two_d, curve::curve_2d());
  b.emplace_back(p.in_px, base.x);
  b.emplace_back(p.in_py, base.y);
  for (size_t i = 0; i < p.in_endo_consts.size(); ++i)
    b.emplace_back(p.in_endo_consts[i], Fp2::from_u64(3 + i, 7 + i));
  return b;
}

// Runs `lanes` jobs through run_lanes and checks every lane bitwise against
// asic::simulate on the same program. Mixed preloads: each lane gets its
// own base point and scalar.
void check_lane_width(int lanes) {
  SCOPED_TRACE("lanes=" + std::to_string(lanes));
  auto prog = engine::CompileCache::process_cache().get_or_compile(functional_key());
  engine::DecodedRom rom = engine::decode(prog->sm);

  Rng rng(1000 + static_cast<uint64_t>(lanes));
  std::vector<trace::InputBindings> bindings;
  std::vector<curve::Decomposition> decs(static_cast<size_t>(lanes));
  std::vector<curve::RecodedScalar> recs(static_cast<size_t>(lanes));
  std::vector<trace::EvalContext> ctxs(static_cast<size_t>(lanes));
  for (int l = 0; l < lanes; ++l) {
    const size_t i = static_cast<size_t>(l);
    bindings.push_back(
        bindings_for(*prog, curve::deterministic_point(1 + i)));
    decs[i] = curve::decompose(rng.next_u256());
    recs[i] = curve::recode(decs[i].a);
    ctxs[i].recoded = &recs[i];
    ctxs[i].k_was_even = decs[i].k_was_even;
  }

  engine::LaneWorkspace ws;
  engine::run_lanes(rom, bindings.data(), ctxs.data(), lanes, ws);

  for (int l = 0; l < lanes; ++l) {
    const size_t i = static_cast<size_t>(l);
    asic::SimResult ref = asic::simulate(prog->sm, bindings[i], ctxs[i]);
    EXPECT_TRUE(engine::lane_output(rom, ws, "x", l) == ref.outputs.at("x"))
        << "lane " << l << " x";
    EXPECT_TRUE(engine::lane_output(rom, ws, "y", l) == ref.outputs.at("y"))
        << "lane " << l << " y";
  }
}

TEST(LaneExecutorTest, EveryWidthMatchesReferenceSimulator) {
  for (int w : {1, 2, 4, 8}) check_lane_width(w);
}

TEST(LaneExecutorTest, RaggedWidthsMatchReferenceSimulator) {
  for (int w : {3, 5, 7}) check_lane_width(w);
}

TEST(LaneExecutorTest, WorkspaceReuseAcrossWidths) {
  // One workspace serving wide then narrow waves (the engine's ragged-tail
  // pattern): the narrow run must not see stale wide-lane state.
  auto prog = engine::CompileCache::process_cache().get_or_compile(functional_key());
  engine::DecodedRom rom = engine::decode(prog->sm);
  engine::LaneWorkspace ws;
  Rng rng(77);
  for (int lanes : {8, 3, 8, 1}) {
    std::vector<trace::InputBindings> bindings;
    std::vector<curve::Decomposition> decs(static_cast<size_t>(lanes));
    std::vector<curve::RecodedScalar> recs(static_cast<size_t>(lanes));
    std::vector<trace::EvalContext> ctxs(static_cast<size_t>(lanes));
    for (int l = 0; l < lanes; ++l) {
      const size_t i = static_cast<size_t>(l);
      bindings.push_back(bindings_for(*prog, curve::deterministic_point(3 + i)));
      decs[i] = curve::decompose(rng.next_u256());
      recs[i] = curve::recode(decs[i].a);
      ctxs[i].recoded = &recs[i];
      ctxs[i].k_was_even = decs[i].k_was_even;
    }
    engine::run_lanes(rom, bindings.data(), ctxs.data(), lanes, ws);
    for (int l = 0; l < lanes; ++l) {
      const size_t i = static_cast<size_t>(l);
      asic::SimResult ref = asic::simulate(prog->sm, bindings[i], ctxs[i]);
      ASSERT_TRUE(engine::lane_output(rom, ws, "x", l) == ref.outputs.at("x"))
          << "lanes=" << lanes << " lane " << l;
      ASSERT_TRUE(engine::lane_output(rom, ws, "y", l) == ref.outputs.at("y"))
          << "lanes=" << lanes << " lane " << l;
    }
  }
}

// --- strip-parallel batch inversion ----------------------------------------

TEST(LaneBatchInvertTest, MatchesPerElementInversionIncludingZeros) {
  for (size_t n : {1u, 7u, 31u, 32u, 33u, 64u, 257u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    Rng rng(500 + n);
    std::vector<Fp2> xs(n), want(n);
    for (size_t i = 0; i < n; ++i) {
      U256 r = rng.next_u256();
      xs[i] = Fp2::from_u64(r.w[0], r.w[1]);
      if (i % 5 == 3) xs[i] = Fp2();  // zeros pass through untouched
      want[i] = xs[i].is_zero() ? Fp2() : xs[i].inv();
    }
    field::batch_invert(xs.data(), n);
    for (size_t i = 0; i < n; ++i)
      ASSERT_TRUE(xs[i] == want[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace fourq
