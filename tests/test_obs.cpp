// Telemetry layer tests: metric semantics, span nesting, Chrome trace
// export well-formedness, the JSON reader, and the golden event-stream
// check — SimStats derived from the published cycle events must equal the
// simulator's own stats on the Table I loop body.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "asic/simulator.hpp"
#include "curve/point.hpp"
#include "obs/exporter.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace fourq {
namespace {

using obs::Registry;
using obs::SpanTracer;

TEST(Metrics, CounterSemantics) {
  Registry reg;
  obs::Counter& c = reg.counter("a.calls");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Lookup by the same name returns the same instance.
  EXPECT_EQ(&reg.counter("a.calls"), &c);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // handle survives reset with value zeroed
  c.inc(7);
  EXPECT_EQ(reg.counter("a.calls").value(), 7u);
}

TEST(Metrics, GaugeSemantics) {
  Registry reg;
  obs::Gauge& g = reg.gauge("makespan");
  g.set(25);
  g.set(23.5);
  EXPECT_DOUBLE_EQ(g.value(), 23.5);
  reg.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBuckets) {
  Registry reg;
  obs::Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 bounds + overflow
  for (double x : {0.5, 1.0, 5.0, 50.0, 1000.0}) h.observe(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1056.5);
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0.5 and the inclusive bound 1.0
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow
  EXPECT_DOUBLE_EQ(h.upper_bound(1), 10.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(3)));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(Metrics, JsonlExportParses) {
  Registry reg;
  reg.counter("sim.cycles").inc(1973);
  reg.gauge("sched.makespan").set(25);
  reg.histogram("span.dur", {10.0, 100.0}).observe(42.0);

  std::string err;
  auto lines = obs::json::parse_lines(reg.to_jsonl(), &err);
  ASSERT_TRUE(err.empty()) << err;
  // counter + gauge + histogram + 4 derived quantile gauges (p50/p90/p99/p999)
  ASSERT_EQ(lines.size(), 7u);
  for (const auto& v : lines) {
    ASSERT_TRUE(v->is_object());
    EXPECT_TRUE(v->has("metric"));
    EXPECT_TRUE(v->has("type"));
  }
  // The derived quantile lines carry the histogram's only sample.
  bool saw_p99 = false;
  for (const auto& v : lines)
    if (v->at("metric").string() == "span.dur.p99") {
      EXPECT_EQ(v->at("type").string(), "gauge");
      EXPECT_DOUBLE_EQ(v->at("value").number(), 42.0);
      saw_p99 = true;
    }
  EXPECT_TRUE(saw_p99);
  // Counters sort before gauges before histograms within the export.
  bool found = false;
  for (const auto& v : lines)
    if (v->at("metric").string() == "sim.cycles") {
      EXPECT_EQ(v->at("type").string(), "counter");
      EXPECT_DOUBLE_EQ(v->at("value").number(), 1973.0);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Metrics, LabeledSeriesIdentity) {
  Registry reg;
  obs::Counter& a = reg.counter("msm.calls", {{"backend", "straus"}});
  obs::Counter& b = reg.counter("msm.calls", {{"backend", "pippenger"}});
  obs::Counter& plain = reg.counter("msm.calls");
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &plain);
  a.inc(3);
  b.inc(5);
  plain.inc(8);

  // Label order is irrelevant: the sorted flattened name is the identity.
  obs::Counter& two = reg.counter("q", {{"worker", "1"}, {"kind", "sm"}});
  EXPECT_EQ(&reg.counter("q", {{"kind", "sm"}, {"worker", "1"}}), &two);
  EXPECT_EQ(obs::flatten_name("q", {{"worker", "1"}, {"kind", "sm"}}),
            "q{kind=\"sm\",worker=\"1\"}");
  EXPECT_EQ(obs::flatten_name("q", {}), "q");

  // Every labeled series exports under its own flattened name.
  std::string err;
  auto lines = obs::json::parse_lines(reg.to_jsonl(), &err);
  ASSERT_TRUE(err.empty()) << err;
  std::map<std::string, double> by_name;
  for (const auto& v : lines) by_name[v->at("metric").string()] = v->at("value").number();
  EXPECT_DOUBLE_EQ(by_name.at("msm.calls{backend=\"straus\"}"), 3.0);
  EXPECT_DOUBLE_EQ(by_name.at("msm.calls{backend=\"pippenger\"}"), 5.0);
  EXPECT_DOUBLE_EQ(by_name.at("msm.calls"), 8.0);

  // snapshot() carries the structured label set alongside the export name.
  bool found = false;
  for (const obs::MetricSnapshot& s : reg.snapshot())
    if (s.export_name == "msm.calls{backend=\"straus\"}") {
      EXPECT_EQ(s.name, "msm.calls");
      ASSERT_EQ(s.labels.size(), 1u);
      EXPECT_EQ(s.labels[0].first, "backend");
      EXPECT_EQ(s.labels[0].second, "straus");
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Metrics, HistogramBoundsConflictRejected) {
  Registry reg;
  obs::Histogram& h = reg.histogram("lat", {1.0, 10.0});
  // Pure lookup (empty bounds) and exact-match bounds both return the
  // original instance.
  EXPECT_EQ(&reg.histogram("lat", {}), &h);
  EXPECT_EQ(&reg.histogram("lat", {1.0, 10.0}), &h);
  // Different bounds for the same series is a caller bug.
  EXPECT_THROW(reg.histogram("lat", {5.0, 50.0}), std::logic_error);
  EXPECT_THROW(reg.histogram("lat", {1.0, 10.0, 100.0}), std::logic_error);

  // reset() keeps the handle valid and the bucket shape intact.
  h.observe(3.0);
  reg.reset();
  EXPECT_EQ(h.count(), 0u);
  ASSERT_EQ(h.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h.bounds()[1], 10.0);
  EXPECT_EQ(&reg.histogram("lat", {1.0, 10.0}), &h);  // same bounds still accepted
  h.observe(2.0);
  EXPECT_EQ(reg.histogram("lat", {}).count(), 1u);
}

TEST(Metrics, QuantileKnownAnswers) {
  // Single observation: every quantile is that value.
  {
    obs::Histogram h(obs::Histogram::latency_bounds_us());
    h.observe(137.0);
    for (double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_DOUBLE_EQ(h.quantile(q), 137.0);
  }
  // Uniform 1..10000 on the shared log-2 scale: interpolation keeps the
  // estimate within one bucket (factor 2), and q=0/q=1 are exact.
  {
    obs::Histogram h(obs::Histogram::latency_bounds_us());
    for (int i = 1; i <= 10000; ++i) h.observe(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10000.0);
    struct Case {
      double q, exact;
    } cases[] = {{0.5, 5000.0}, {0.9, 9000.0}, {0.99, 9900.0}, {0.999, 9990.0}};
    for (const Case& c : cases) {
      double est = h.quantile(c.q);
      EXPECT_GT(est, c.exact / 2.0) << "q=" << c.q;
      EXPECT_LT(est, c.exact * 2.0) << "q=" << c.q;
    }
    // Monotone in q.
    EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
    EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
    EXPECT_LE(h.quantile(0.99), h.quantile(0.999));
  }
  // Heavy tail: most mass at the bottom, a few large outliers. p50 must stay
  // near the mass, p99.9 near the outliers, and estimates clamp to [min,max].
  {
    obs::Histogram h(obs::Histogram::latency_bounds_us());
    for (int i = 0; i < 990; ++i) h.observe(10.0);
    for (int i = 0; i < 10; ++i) h.observe(100000.0);
    EXPECT_LE(h.quantile(0.5), 16.0);
    EXPECT_GE(h.quantile(0.999), 50000.0);
    EXPECT_LE(h.quantile(0.999), 100000.0);
    EXPECT_GE(h.quantile(0.0), 10.0);
  }
  // Empty histogram degrades to zero.
  {
    obs::Histogram h({1.0, 2.0});
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  }
}

TEST(Metrics, PrometheusExportShape) {
  Registry reg;
  reg.counter("msm.calls", {{"backend", "straus"}}).inc(3);
  reg.gauge("engine.workers").set(8);
  reg.latency_histogram("engine.queue.wait_us", {{"kind", "sm"}}).observe(100.0);
  std::string prom = reg.to_prometheus();

  // Sanitised names under the fourq_ prefix, labels preserved.
  EXPECT_NE(prom.find("fourq_msm_calls{backend=\"straus\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE fourq_msm_calls counter"), std::string::npos);
  EXPECT_NE(prom.find("fourq_engine_workers 8"), std::string::npos);
  // Histograms: cumulative buckets, sum/count, and the quantile gauge family.
  EXPECT_NE(prom.find("fourq_engine_queue_wait_us_bucket{"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("fourq_engine_queue_wait_us_count{kind=\"sm\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("fourq_engine_queue_wait_us_q{kind=\"sm\",quantile=\"0.99\"}"),
            std::string::npos);
  // Every non-comment line is `name value` or `name{labels} value`.
  size_t pos = 0;
  while (pos < prom.size()) {
    size_t nl = prom.find('\n', pos);
    if (nl == std::string::npos) nl = prom.size();
    std::string line = prom.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + sp + 1, &end);
    EXPECT_EQ(*end, '\0') << line;
  }
}

TEST(Flight, CapacityAndSampling) {
  obs::FlightConfig cfg;
  cfg.capacity = 1024;
  cfg.sample_every = 1;
  obs::FlightRecorder f(cfg);
  const size_t baseline_mem = f.memory_bytes();

  for (int i = 0; i < 10000; ++i)
    f.record(obs::FlightKind::kTask, "engine.task.sm", static_cast<uint64_t>(i), 5, i % 8);
  EXPECT_EQ(f.seen(), 10000u);
  EXPECT_EQ(f.recorded(), 10000u);
  EXPECT_EQ(f.size(), 1024u);            // bounded by capacity
  EXPECT_EQ(f.evicted(), 10000u - 1024u);
  // Fixed memory: the ring never grows past its initial allocation (the only
  // growth allowed is the bounded name table).
  EXPECT_LE(f.memory_bytes(), baseline_mem + 4096);

  // Ring holds the *newest* events, oldest first.
  std::vector<obs::FlightRecorder::Event> ev = f.snapshot();
  ASSERT_EQ(ev.size(), 1024u);
  EXPECT_EQ(ev.front().t_us, 10000u - 1024u);
  EXPECT_EQ(ev.back().t_us, 9999u);
  EXPECT_EQ(ev.back().name, "engine.task.sm");

  // to_json round-trips through the reader with the bookkeeping fields.
  std::string err;
  obs::json::ValuePtr v = obs::json::parse(f.to_json(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(v->at("schema").string(), "fourq.flight.v1");
  EXPECT_DOUBLE_EQ(v->at("seen").number(), 10000.0);
  EXPECT_EQ(v->at("events").arr.size(), 1024u);

  // 1-in-4 sampling: configure() drops old events, then records ~seen/4.
  cfg.sample_every = 4;
  f.configure(cfg);
  for (int i = 0; i < 1000; ++i)
    f.record(obs::FlightKind::kSpan, "span", static_cast<uint64_t>(i), 1);
  EXPECT_EQ(f.seen(), 1000u);
  EXPECT_EQ(f.recorded(), 250u);
  EXPECT_EQ(f.size(), 250u);

  f.reset();
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.seen(), 0u);
}

TEST(Spans, ThreadChurnReleasesBookkeeping) {
  SpanTracer t;
  {
    obs::ScopedSpan s(t, "main.anchor");
  }
  const size_t base_threads = t.tracked_threads();

  // 64 short-lived workers, each tracing properly nested spans. After every
  // thread has exited, its bookkeeping must be gone — a tracer that keyed
  // stacks by std::thread::id would both leak entries and cross-wire reused
  // ids here.
  for (int round = 0; round < 4; ++round) {
    std::vector<std::thread> workers;
    for (int i = 0; i < 16; ++i)
      workers.emplace_back([&t] {
        obs::ScopedSpan outer(t, "worker.outer");
        obs::ScopedSpan inner(t, "worker.inner");
      });
    for (auto& w : workers) w.join();
  }
  EXPECT_EQ(t.tracked_threads(), base_threads);
  EXPECT_EQ(t.open_stacks(), 0u);
  EXPECT_EQ(t.count("worker.outer"), 64u);
  EXPECT_EQ(t.count("worker.inner"), 64u);
  EXPECT_EQ(t.abandoned_spans(), 0u);

  // A thread that exits with spans still open abandons them instead of
  // leaving an orphaned stack behind.
  std::thread leaker([&t] { t.begin("worker.leak"); });
  leaker.join();
  EXPECT_EQ(t.tracked_threads(), base_threads);
  EXPECT_EQ(t.open_stacks(), 0u);
  EXPECT_EQ(t.abandoned_spans(), 1u);
  EXPECT_EQ(t.count("worker.leak"), 0u);  // never completed

  // The tracer still works for surviving threads and the trace stays valid.
  {
    obs::ScopedSpan s(t, "main.after");
  }
  std::string err;
  obs::json::parse(t.chrome_trace_json(), &err);
  EXPECT_TRUE(err.empty()) << err;
}

TEST(Provenance, HeaderShape) {
  obs::Provenance p = obs::make_provenance("fourq.metrics.v1", "0f3a");
  EXPECT_EQ(p.schema, "fourq.metrics.v1");
  EXPECT_EQ(p.version, 1);
  EXPECT_EQ(p.machine_hash, "0f3a");
  EXPECT_FALSE(p.git_sha.empty());
  // ISO-8601 Zulu: "YYYY-MM-DDTHH:MM:SSZ".
  ASSERT_EQ(p.timestamp_utc.size(), 20u);
  EXPECT_EQ(p.timestamp_utc[10], 'T');
  EXPECT_EQ(p.timestamp_utc.back(), 'Z');

  std::string err;
  obs::json::ValuePtr v = obs::json::parse(obs::provenance_json(p), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(v->at("schema").string(), "fourq.metrics.v1");
  EXPECT_EQ(v->at("git_sha").string(), p.git_sha);
  EXPECT_EQ(v->at("machine_hash").string(), "0f3a");
  EXPECT_DOUBLE_EQ(v->at("version").number(), 1.0);

  // The JSONL header form ends with exactly one newline and is a lone line.
  std::string line = obs::provenance_line("fourq.bench.v1");
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  auto lines = obs::json::parse_lines(line, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_FALSE(lines[0]->has("metric"));  // perf_regress skips it
}

TEST(Exporter, SnapshotRoundTrip) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "fourq_obs_exporter_test";
  fs::remove_all(dir);

  obs::Telemetry tel;
  tel.metrics.counter("engine.worker.tasks", {{"worker", "0"}}).inc(17);
  obs::Histogram& h = tel.metrics.latency_histogram("engine.queue.wait_us", {{"kind", "sm"}});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i * 10));
  tel.flight.record(obs::FlightKind::kMark, "test.mark", 1, 0);

  obs::ExporterOptions opt;
  opt.dir = dir.string();
  opt.machine_hash = "cafe";
  obs::SnapshotExporter exp(tel, opt);
  ASSERT_TRUE(exp.write_snapshot());

  for (const char* f : {"metrics.prom", "metrics.json", "metrics.jsonl", "flight.json"})
    EXPECT_TRUE(fs::exists(dir / f)) << f;

  // metrics.json: schema + provenance + labeled series with quantiles.
  std::ifstream in(dir / "metrics.json", std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  obs::json::ValuePtr doc = obs::json::parse(ss.str(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(doc->at("schema").string(), "fourq.metrics.v1");
  EXPECT_EQ(doc->at("provenance").at("machine_hash").string(), "cafe");
  EXPECT_EQ(doc->at("provenance").at("schema").string(), "fourq.metrics.v1");
  bool saw_counter = false, saw_hist = false;
  for (const auto& m : doc->at("metrics").arr) {
    if (m->at("name").string() == "engine.worker.tasks") {
      EXPECT_EQ(m->at("labels").at("worker").string(), "0");
      EXPECT_DOUBLE_EQ(m->at("value").number(), 17.0);
      saw_counter = true;
    }
    if (m->at("name").string() == "engine.queue.wait_us") {
      EXPECT_EQ(m->at("type").string(), "histogram");
      EXPECT_DOUBLE_EQ(m->at("count").number(), 100.0);
      double p50 = m->at("quantiles").at("p50").number();
      double p99 = m->at("quantiles").at("p99").number();
      EXPECT_GT(p50, 250.0);   // exact median 505 on a factor-2 scale
      EXPECT_LT(p50, 1010.0);
      EXPECT_GE(p99, p50);
      EXPECT_LE(p99, 1000.0);  // clamped to the observed max
      saw_hist = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);

  // metrics.prom starts with the provenance comment and carries build info.
  std::ifstream pin(dir / "metrics.prom", std::ios::binary);
  std::stringstream pss;
  pss << pin.rdbuf();
  std::string prom = pss.str();
  ASSERT_FALSE(prom.empty());
  EXPECT_EQ(prom[0], '#');
  EXPECT_NE(prom.find("# provenance: {\"schema\":\"fourq.metrics.v1\""), std::string::npos);
  EXPECT_NE(prom.find("fourq_build_info{git_sha="), std::string::npos);

  // A second snapshot bumps the sequence number (atomic rename kept the
  // previous file readable throughout).
  ASSERT_TRUE(exp.write_snapshot());
  EXPECT_EQ(exp.snapshots_written(), 2u);

  fs::remove_all(dir);
}

TEST(Spans, NestingDepths) {
  SpanTracer t;
  t.begin("outer");
  EXPECT_EQ(t.open_depth(), 1);
  {
    obs::ScopedSpan inner(t, "inner");
    EXPECT_EQ(t.open_depth(), 2);
  }
  t.end();
  EXPECT_EQ(t.open_depth(), 0);

  // Completion order is children-first; depth reflects nesting at begin.
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[0].name, "inner");
  EXPECT_EQ(t.spans()[0].depth, 1);
  EXPECT_EQ(t.spans()[1].name, "outer");
  EXPECT_EQ(t.spans()[1].depth, 0);
  EXPECT_GE(t.spans()[1].dur_us, t.spans()[0].dur_us);
  EXPECT_LE(t.spans()[1].start_us, t.spans()[0].start_us);

  t.reset();
  EXPECT_TRUE(t.spans().empty());
}

TEST(Spans, ChromeTraceJsonWellFormed) {
  SpanTracer t;
  t.begin("phase \"a\"\n");  // name needing escaping
  t.begin("child");
  t.end();
  t.end();

  std::string err;
  obs::json::ValuePtr v = obs::json::parse(t.chrome_trace_json(), &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_TRUE(v->is_object());
  const obs::json::Value& events = v->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.arr.size(), 2u);
  for (size_t i = 0; i < events.arr.size(); ++i) {
    const obs::json::Value& e = events.at(i);
    EXPECT_EQ(e.at("ph").string(), "X");
    EXPECT_EQ(e.at("cat").string(), "fourq");
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("dur"));
    EXPECT_TRUE(e.at("args").has("depth"));
  }
  // The escaped name must round-trip through the parser (spans export in
  // completion order, so the outer span is last).
  EXPECT_EQ(events.at(1).at("name").string(), "phase \"a\"\n");
}

TEST(Macros, GlobalRegistryWiring) {
  if (!obs::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  obs::global().reset();
  uint64_t before = obs::global().metrics.counter("test.macro.calls").value();
  FOURQ_COUNTER_INC("test.macro.calls");
  FOURQ_COUNTER_ADD("test.macro.calls", 2);
  FOURQ_GAUGE_SET("test.macro.gauge", 3.5);
  {
    FOURQ_SPAN("test.macro.span");
  }
  EXPECT_EQ(obs::global().metrics.counter("test.macro.calls").value(), before + 3);
  EXPECT_DOUBLE_EQ(obs::global().metrics.gauge("test.macro.gauge").value(), 3.5);
  bool saw_span = false;
  for (const auto& s : obs::global().spans.spans())
    if (s.name == "test.macro.span") saw_span = true;
  EXPECT_TRUE(saw_span);
}

// Golden check: run the Table I loop body through the cycle-accurate
// simulator with a recording sink, then rebuild SimStats purely from the
// event stream. Both views must agree exactly, and the event-derived cycle
// count must equal the scheduled program length.
TEST(EventStream, LoopBodyStatsMatchEvents) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileResult r = sched::compile_program(body.program, {});

  curve::PointR1 q = curve::dbl(curve::to_r1(curve::deterministic_point(31)));
  curve::PointR2 e = curve::to_r2(curve::to_r1(curve::deterministic_point(32)));
  trace::InputBindings b;
  b.emplace_back(body.q_inputs[0], q.X);
  b.emplace_back(body.q_inputs[1], q.Y);
  b.emplace_back(body.q_inputs[2], q.Z);
  b.emplace_back(body.q_inputs[3], q.Ta);
  b.emplace_back(body.q_inputs[4], q.Tb);
  b.emplace_back(body.table_inputs[0], e.xpy);
  b.emplace_back(body.table_inputs[1], e.ymx);
  b.emplace_back(body.table_inputs[2], e.z2);
  b.emplace_back(body.table_inputs[3], e.dt2);

  obs::RecordingSink sink;
  asic::SimResult sim = asic::simulate(r.sm, b, trace::EvalContext{}, &sink);

  ASSERT_FALSE(sink.events.empty());
  asic::SimStats derived = asic::stats_from_events(sink.events);
  EXPECT_EQ(derived, sim.stats);

  int kcycles = 0;
  for (const obs::CycleEvent& ev : sink.events)
    if (ev.kind == obs::SimEventKind::kCycle) ++kcycles;
  EXPECT_EQ(kcycles, sim.stats.cycles);
  EXPECT_EQ(sim.stats.cycles, r.sm.cycles());

  // Port limits observed by the event-derived maxima.
  EXPECT_LE(sim.stats.max_reads_in_cycle, r.sm.cfg.rf_read_ports);
  EXPECT_LE(sim.stats.max_writes_in_cycle, r.sm.cfg.rf_write_ports);
  EXPECT_GE(sim.stats.max_writes_in_cycle, 1);
  EXPECT_EQ(sim.stats.mul_issues, 15);

  // The exported event log parses line-by-line.
  std::string err;
  auto lines = obs::json::parse_lines(obs::events_to_jsonl(sink.events), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(lines.size(), sink.events.size());
}

TEST(EventStream, UtilisationAndStalls) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileResult r = sched::compile_program(body.program, {});
  obs::RecordingSink sink;
  trace::InputBindings b;
  curve::PointR1 q = curve::dbl(curve::to_r1(curve::deterministic_point(7)));
  curve::PointR2 e = curve::to_r2(curve::to_r1(curve::deterministic_point(8)));
  b.emplace_back(body.q_inputs[0], q.X);
  b.emplace_back(body.q_inputs[1], q.Y);
  b.emplace_back(body.q_inputs[2], q.Z);
  b.emplace_back(body.q_inputs[3], q.Ta);
  b.emplace_back(body.q_inputs[4], q.Tb);
  b.emplace_back(body.table_inputs[0], e.xpy);
  b.emplace_back(body.table_inputs[1], e.ymx);
  b.emplace_back(body.table_inputs[2], e.z2);
  b.emplace_back(body.table_inputs[3], e.dt2);
  asic::SimResult sim = asic::simulate(r.sm, b, trace::EvalContext{}, &sink);

  EXPECT_GT(sim.stats.mul_utilisation(), 0.0);
  EXPECT_LE(sim.stats.mul_utilisation(), 1.0);
  EXPECT_GT(sim.stats.addsub_utilisation(), 0.0);
  // Stalls + issue cycles bound: a stall cycle by definition issues nothing.
  EXPECT_LE(sim.stats.stall_cycles + std::max(sim.stats.mul_issues, sim.stats.addsub_issues),
            sim.stats.cycles);
}

TEST(Json, EscapeRoundTripsControlAndHighBytes) {
  // The exporters embed caller-supplied names (span names, flight names,
  // metric labels) in JSON; json_escape must make any byte string safe and
  // the reader must invert it exactly.
  const std::string nasty = std::string("line\nbreak \"quoted\" ctrl") +
                            '\x01' + " high" + '\xb1' + '\xff' + " tab\t";
  std::string doc = "{\"s\":\"" + obs::json_escape(nasty) + "\"}";
  std::string err;
  obs::json::ValuePtr v = obs::json::parse(doc, &err);
  ASSERT_TRUE(err.empty()) << err << " in " << doc;
  EXPECT_EQ(v->at("s").string(), nasty);

  // The same bytes as a span name survive the Chrome trace export.
  SpanTracer t;
  t.begin(nasty);
  t.end();
  err.clear();
  obs::json::ValuePtr trace = obs::json::parse(t.chrome_trace_json(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(trace->at("traceEvents").at(0).at("name").string(), nasty);

  // ... and as a flight-recorder event name through to_json.
  obs::FlightRecorder f((obs::FlightConfig()));
  f.record(obs::FlightKind::kMark, nasty.c_str(), 1, 0);
  err.clear();
  obs::json::ValuePtr flight = obs::json::parse(f.to_json(), &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(flight->at("events").arr.size(), 1u);
  EXPECT_EQ(flight->at("events").at(0).at("name").string(), nasty);
}

TEST(Exporter, StaleTmpFilesCleanedOnNextExport) {
  // A process killed mid-export leaves `<name>.tmp` behind (write_snapshot
  // writes to a temp file then renames). The next export must sweep them so
  // a crash can't strand junk in the telemetry directory forever.
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "fourq_obs_staletmp_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir / "metrics.json.tmp") << "{\"partial\":";
  std::ofstream(dir / "flight.json.tmp") << "garbage";

  obs::Telemetry tel;
  tel.metrics.counter("engine.jobs.sm").inc(3);
  obs::ExporterOptions opt;
  opt.dir = dir.string();
  obs::SnapshotExporter exp(tel, opt);
  ASSERT_TRUE(exp.write_snapshot());

  int tmp_left = 0;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".tmp") ++tmp_left;
  EXPECT_EQ(tmp_left, 0);
  // The real exports landed and the stale partial did not shadow them.
  EXPECT_TRUE(fs::exists(dir / "metrics.json"));
  std::ifstream in(dir / "metrics.json", std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  EXPECT_NE(obs::validate_metrics_json_v1(ss.str(), &err), nullptr) << err;
  fs::remove_all(dir);
}

TEST(Exporter, TruncatedMetricsJsonRejected) {
  // fourqc stats loads metrics.json through validate_metrics_json_v1; a
  // file truncated by a crash or full disk must fail loudly (exit 1 in the
  // CLI), never parse as a smaller-but-valid document.
  obs::Telemetry tel;
  tel.metrics.counter("engine.jobs.sm").inc(42);
  tel.metrics.latency_histogram("engine.queue.wait_us", {{"kind", "sm"}}).observe(9.0);
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "fourq_obs_truncate_test";
  fs::remove_all(dir);
  obs::ExporterOptions opt;
  opt.dir = dir.string();
  obs::SnapshotExporter exp(tel, opt);
  ASSERT_TRUE(exp.write_snapshot());
  std::ifstream in(dir / "metrics.json", std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string full = ss.str();
  fs::remove_all(dir);

  std::string err;
  EXPECT_NE(obs::validate_metrics_json_v1(full, &err), nullptr) << err;

  err.clear();
  EXPECT_EQ(obs::validate_metrics_json_v1(full.substr(0, full.size() * 3 / 5), &err),
            nullptr);
  EXPECT_FALSE(err.empty());

  err.clear();
  EXPECT_EQ(obs::validate_metrics_json_v1("", &err), nullptr);
  EXPECT_FALSE(err.empty());

  // Well-formed JSON with the wrong schema is rejected too.
  err.clear();
  EXPECT_EQ(obs::validate_metrics_json_v1("{\"schema\":\"fourq.flight.v1\"}", &err),
            nullptr);
  EXPECT_FALSE(err.empty());
}

TEST(Json, ParserBasics) {
  std::string err;
  obs::json::ValuePtr v =
      obs::json::parse("{\"a\":[1,2.5,-3e2],\"b\":{\"s\":\"x\\ny\"},\"t\":true,\"n\":null}",
                       &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_DOUBLE_EQ(v->at("a").at(1).number(), 2.5);
  EXPECT_DOUBLE_EQ(v->at("a").at(2).number(), -300.0);
  EXPECT_EQ(v->at("b").at("s").string(), "x\ny");
  EXPECT_EQ(v->at("t").type, obs::json::Type::kBool);
  EXPECT_EQ(v->at("n").type, obs::json::Type::kNull);

  obs::json::parse("{\"a\":", &err);
  EXPECT_FALSE(err.empty());
  err.clear();
  obs::json::parse("[1,]", &err);
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace fourq
