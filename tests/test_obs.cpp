// Telemetry layer tests: metric semantics, span nesting, Chrome trace
// export well-formedness, the JSON reader, and the golden event-stream
// check — SimStats derived from the published cycle events must equal the
// simulator's own stats on the Table I loop body.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "asic/simulator.hpp"
#include "curve/point.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace fourq {
namespace {

using obs::Registry;
using obs::SpanTracer;

TEST(Metrics, CounterSemantics) {
  Registry reg;
  obs::Counter& c = reg.counter("a.calls");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Lookup by the same name returns the same instance.
  EXPECT_EQ(&reg.counter("a.calls"), &c);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // handle survives reset with value zeroed
  c.inc(7);
  EXPECT_EQ(reg.counter("a.calls").value(), 7u);
}

TEST(Metrics, GaugeSemantics) {
  Registry reg;
  obs::Gauge& g = reg.gauge("makespan");
  g.set(25);
  g.set(23.5);
  EXPECT_DOUBLE_EQ(g.value(), 23.5);
  reg.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBuckets) {
  Registry reg;
  obs::Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 bounds + overflow
  for (double x : {0.5, 1.0, 5.0, 50.0, 1000.0}) h.observe(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1056.5);
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0.5 and the inclusive bound 1.0
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow
  EXPECT_DOUBLE_EQ(h.upper_bound(1), 10.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(3)));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(Metrics, JsonlExportParses) {
  Registry reg;
  reg.counter("sim.cycles").inc(1973);
  reg.gauge("sched.makespan").set(25);
  reg.histogram("span.dur", {10.0, 100.0}).observe(42.0);

  std::string err;
  auto lines = obs::json::parse_lines(reg.to_jsonl(), &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(lines.size(), 3u);
  for (const auto& v : lines) {
    ASSERT_TRUE(v->is_object());
    EXPECT_TRUE(v->has("metric"));
    EXPECT_TRUE(v->has("type"));
  }
  // Counters sort before gauges before histograms within the export.
  bool found = false;
  for (const auto& v : lines)
    if (v->at("metric").string() == "sim.cycles") {
      EXPECT_EQ(v->at("type").string(), "counter");
      EXPECT_DOUBLE_EQ(v->at("value").number(), 1973.0);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Spans, NestingDepths) {
  SpanTracer t;
  t.begin("outer");
  EXPECT_EQ(t.open_depth(), 1);
  {
    obs::ScopedSpan inner(t, "inner");
    EXPECT_EQ(t.open_depth(), 2);
  }
  t.end();
  EXPECT_EQ(t.open_depth(), 0);

  // Completion order is children-first; depth reflects nesting at begin.
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[0].name, "inner");
  EXPECT_EQ(t.spans()[0].depth, 1);
  EXPECT_EQ(t.spans()[1].name, "outer");
  EXPECT_EQ(t.spans()[1].depth, 0);
  EXPECT_GE(t.spans()[1].dur_us, t.spans()[0].dur_us);
  EXPECT_LE(t.spans()[1].start_us, t.spans()[0].start_us);

  t.reset();
  EXPECT_TRUE(t.spans().empty());
}

TEST(Spans, ChromeTraceJsonWellFormed) {
  SpanTracer t;
  t.begin("phase \"a\"\n");  // name needing escaping
  t.begin("child");
  t.end();
  t.end();

  std::string err;
  obs::json::ValuePtr v = obs::json::parse(t.chrome_trace_json(), &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_TRUE(v->is_object());
  const obs::json::Value& events = v->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.arr.size(), 2u);
  for (size_t i = 0; i < events.arr.size(); ++i) {
    const obs::json::Value& e = events.at(i);
    EXPECT_EQ(e.at("ph").string(), "X");
    EXPECT_EQ(e.at("cat").string(), "fourq");
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("dur"));
    EXPECT_TRUE(e.at("args").has("depth"));
  }
  // The escaped name must round-trip through the parser (spans export in
  // completion order, so the outer span is last).
  EXPECT_EQ(events.at(1).at("name").string(), "phase \"a\"\n");
}

TEST(Macros, GlobalRegistryWiring) {
  if (!obs::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  obs::global().reset();
  uint64_t before = obs::global().metrics.counter("test.macro.calls").value();
  FOURQ_COUNTER_INC("test.macro.calls");
  FOURQ_COUNTER_ADD("test.macro.calls", 2);
  FOURQ_GAUGE_SET("test.macro.gauge", 3.5);
  {
    FOURQ_SPAN("test.macro.span");
  }
  EXPECT_EQ(obs::global().metrics.counter("test.macro.calls").value(), before + 3);
  EXPECT_DOUBLE_EQ(obs::global().metrics.gauge("test.macro.gauge").value(), 3.5);
  bool saw_span = false;
  for (const auto& s : obs::global().spans.spans())
    if (s.name == "test.macro.span") saw_span = true;
  EXPECT_TRUE(saw_span);
}

// Golden check: run the Table I loop body through the cycle-accurate
// simulator with a recording sink, then rebuild SimStats purely from the
// event stream. Both views must agree exactly, and the event-derived cycle
// count must equal the scheduled program length.
TEST(EventStream, LoopBodyStatsMatchEvents) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileResult r = sched::compile_program(body.program, {});

  curve::PointR1 q = curve::dbl(curve::to_r1(curve::deterministic_point(31)));
  curve::PointR2 e = curve::to_r2(curve::to_r1(curve::deterministic_point(32)));
  trace::InputBindings b;
  b.emplace_back(body.q_inputs[0], q.X);
  b.emplace_back(body.q_inputs[1], q.Y);
  b.emplace_back(body.q_inputs[2], q.Z);
  b.emplace_back(body.q_inputs[3], q.Ta);
  b.emplace_back(body.q_inputs[4], q.Tb);
  b.emplace_back(body.table_inputs[0], e.xpy);
  b.emplace_back(body.table_inputs[1], e.ymx);
  b.emplace_back(body.table_inputs[2], e.z2);
  b.emplace_back(body.table_inputs[3], e.dt2);

  obs::RecordingSink sink;
  asic::SimResult sim = asic::simulate(r.sm, b, trace::EvalContext{}, &sink);

  ASSERT_FALSE(sink.events.empty());
  asic::SimStats derived = asic::stats_from_events(sink.events);
  EXPECT_EQ(derived, sim.stats);

  int kcycles = 0;
  for (const obs::CycleEvent& ev : sink.events)
    if (ev.kind == obs::SimEventKind::kCycle) ++kcycles;
  EXPECT_EQ(kcycles, sim.stats.cycles);
  EXPECT_EQ(sim.stats.cycles, r.sm.cycles());

  // Port limits observed by the event-derived maxima.
  EXPECT_LE(sim.stats.max_reads_in_cycle, r.sm.cfg.rf_read_ports);
  EXPECT_LE(sim.stats.max_writes_in_cycle, r.sm.cfg.rf_write_ports);
  EXPECT_GE(sim.stats.max_writes_in_cycle, 1);
  EXPECT_EQ(sim.stats.mul_issues, 15);

  // The exported event log parses line-by-line.
  std::string err;
  auto lines = obs::json::parse_lines(obs::events_to_jsonl(sink.events), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(lines.size(), sink.events.size());
}

TEST(EventStream, UtilisationAndStalls) {
  trace::LoopBodyTrace body = trace::build_loop_body_trace();
  sched::CompileResult r = sched::compile_program(body.program, {});
  obs::RecordingSink sink;
  trace::InputBindings b;
  curve::PointR1 q = curve::dbl(curve::to_r1(curve::deterministic_point(7)));
  curve::PointR2 e = curve::to_r2(curve::to_r1(curve::deterministic_point(8)));
  b.emplace_back(body.q_inputs[0], q.X);
  b.emplace_back(body.q_inputs[1], q.Y);
  b.emplace_back(body.q_inputs[2], q.Z);
  b.emplace_back(body.q_inputs[3], q.Ta);
  b.emplace_back(body.q_inputs[4], q.Tb);
  b.emplace_back(body.table_inputs[0], e.xpy);
  b.emplace_back(body.table_inputs[1], e.ymx);
  b.emplace_back(body.table_inputs[2], e.z2);
  b.emplace_back(body.table_inputs[3], e.dt2);
  asic::SimResult sim = asic::simulate(r.sm, b, trace::EvalContext{}, &sink);

  EXPECT_GT(sim.stats.mul_utilisation(), 0.0);
  EXPECT_LE(sim.stats.mul_utilisation(), 1.0);
  EXPECT_GT(sim.stats.addsub_utilisation(), 0.0);
  // Stalls + issue cycles bound: a stall cycle by definition issues nothing.
  EXPECT_LE(sim.stats.stall_cycles + std::max(sim.stats.mul_issues, sim.stats.addsub_issues),
            sim.stats.cycles);
}

TEST(Json, ParserBasics) {
  std::string err;
  obs::json::ValuePtr v =
      obs::json::parse("{\"a\":[1,2.5,-3e2],\"b\":{\"s\":\"x\\ny\"},\"t\":true,\"n\":null}",
                       &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_DOUBLE_EQ(v->at("a").at(1).number(), 2.5);
  EXPECT_DOUBLE_EQ(v->at("a").at(2).number(), -300.0);
  EXPECT_EQ(v->at("b").at("s").string(), "x\ny");
  EXPECT_EQ(v->at("t").type, obs::json::Type::kBool);
  EXPECT_EQ(v->at("n").type, obs::json::Type::kNull);

  obs::json::parse("{\"a\":", &err);
  EXPECT_FALSE(err.empty());
  err.clear();
  obs::json::parse("[1,]", &err);
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace fourq
