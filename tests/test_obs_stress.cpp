// Concurrency stress for the telemetry pipeline, built to run under
// ThreadSanitizer (the CI tsan leg runs every test labeled "engine"):
// 8 threads hammer labeled counters, shared latency histograms, and the
// flight recorder while a snapshot exporter repeatedly drains the registry
// from yet another thread. Final counts must be exact — relaxed atomics are
// fine for statistics, lost updates are not.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace fourq {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 4000;

TEST(ObsStress, ConcurrentMetricsFlightAndExporter) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "fourq_obs_stress_export";
  fs::remove_all(dir);

  obs::Telemetry tel;
  obs::ExporterOptions xopt;
  xopt.dir = dir.string();
  xopt.interval_ms = 10;  // force many concurrent snapshot() drains
  obs::SnapshotExporter exporter(tel, xopt);
  exporter.start();

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&tel, &go, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      obs::Registry& reg = tel.metrics;
      const obs::Labels wl{{"worker", std::to_string(t)}};
      obs::Counter& own = reg.counter("stress.ops", wl);
      obs::Counter& shared = reg.counter("stress.total");
      obs::Gauge& gauge = reg.gauge("stress.last", wl);
      obs::Histogram& hist = reg.latency_histogram("stress.lat_us", {{"kind", "mixed"}});
      for (int i = 0; i < kOpsPerThread; ++i) {
        own.inc();
        shared.inc();
        gauge.set(static_cast<double>(i));
        hist.observe(static_cast<double>(1 + (i * 37 + t) % 100000));
        tel.flight.record(obs::FlightKind::kTask, "stress.task",
                          static_cast<uint64_t>(i), 1, t);
        if (i % 512 == 0) {
          obs::ScopedSpan span(tel.spans, "stress.span");
        }
      }
    });
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  exporter.stop();

  // Exact accounting: no update may be lost under contention.
  obs::Registry& reg = tel.metrics;
  constexpr uint64_t kTotal = static_cast<uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(reg.counter("stress.total").value(), kTotal);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.counter("stress.ops", {{"worker", std::to_string(t)}}).value(),
              static_cast<uint64_t>(kOpsPerThread))
        << "worker " << t;
  obs::HistogramStats hs =
      reg.latency_histogram("stress.lat_us", {{"kind", "mixed"}}).stats();
  EXPECT_EQ(hs.count, kTotal);
  EXPECT_GE(hs.quantile(0.99), hs.quantile(0.5));

  // The flight recorder saw every offer (explicit records plus the spans the
  // tracer mirrors into it) and stayed within its fixed cap.
  constexpr uint64_t kSpans =
      static_cast<uint64_t>(kThreads) * ((kOpsPerThread + 511) / 512);
  EXPECT_EQ(tel.flight.seen(), kTotal + kSpans);
  EXPECT_LE(tel.flight.size(), tel.flight.capacity());

  // Spans balanced across all threads; their bookkeeping died with them.
  EXPECT_EQ(tel.spans.open_stacks(), 0u);
  EXPECT_EQ(tel.spans.tracked_threads(), 0u);
  EXPECT_EQ(tel.spans.count("stress.span"), static_cast<size_t>(kSpans));

  // The exporter ran concurrently and its final flush is well-formed.
  EXPECT_GE(exporter.snapshots_written(), 2u);
  std::ifstream in(dir / "metrics.json", std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  obs::json::ValuePtr doc = obs::json::parse(ss.str(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(doc->at("schema").string(), "fourq.metrics.v1");
  bool saw_total = false;
  for (const auto& m : doc->at("metrics").arr)
    if (m->at("name").string() == "stress.total") {
      EXPECT_DOUBLE_EQ(m->at("value").number(), static_cast<double>(kTotal));
      saw_total = true;
    }
  EXPECT_TRUE(saw_total);

  fs::remove_all(dir);
}

TEST(ObsStress, RegistryCreationRace) {
  // Threads race to create the *same* labeled series; exactly one instance
  // may win, and every thread's increments must land on it.
  obs::Registry reg;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&reg, &go] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 200; ++i) {
        reg.counter("race.calls", {{"backend", std::to_string(i % 4)}}).inc();
        reg.latency_histogram("race.lat", {{"kind", "x"}}).observe(1.0 + i);
      }
    });
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  uint64_t total = 0;
  for (int b = 0; b < 4; ++b)
    total += reg.counter("race.calls", {{"backend", std::to_string(b)}}).value();
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * 200);
  EXPECT_EQ(reg.latency_histogram("race.lat", {{"kind", "x"}}).count(),
            static_cast<uint64_t>(kThreads) * 200);
}

}  // namespace
}  // namespace fourq
