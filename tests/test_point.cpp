// Group-law tests for the twisted Edwards point arithmetic (paper §II-B).
// The projective R1/R2 formulas are checked against the affine rational
// addition law and against each other.
#include "curve/point.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fourq::curve {
namespace {

TEST(Params, CurveDMatchesPaperDecimal) {
  // Pin the hex constants in params.cpp to the decimal values printed in
  // paper eq. (1) by reconstructing the decimals digit-by-digit in F_p.
  auto from_decimal = [](const std::string& dec) {
    Fp acc;
    Fp ten = Fp::from_u64(10);
    for (char c : dec) acc = acc * ten + Fp::from_u64(static_cast<uint64_t>(c - '0'));
    return acc;
  };
  EXPECT_EQ(curve_d().re(), from_decimal("4205857648805777768770"));
  EXPECT_EQ(curve_d().im(), from_decimal("125317048443780598345676279555970305165"));
  EXPECT_EQ(curve_2d(), curve_d() + curve_d());
}

TEST(Point, DeterministicPointIsOnCurve) {
  for (uint64_t seed : {0ull, 1ull, 7ull, 123456789ull}) {
    Affine p = deterministic_point(seed);
    EXPECT_TRUE(on_curve(p));
  }
}

TEST(Point, IdentityProperties) {
  PointR1 id = identity();
  EXPECT_TRUE(is_identity(id));
  EXPECT_TRUE(on_curve(to_affine(id)));
  // O + O = O
  EXPECT_TRUE(is_identity(add(id, to_r2(id))));
  // 2O = O
  EXPECT_TRUE(is_identity(dbl(id)));
}

TEST(Point, AffineRoundTrip) {
  Affine p = deterministic_point(1);
  Affine back = to_affine(to_r1(p));
  EXPECT_EQ(back.x, p.x);
  EXPECT_EQ(back.y, p.y);
}

TEST(Point, AdditionMatchesAffineLaw) {
  for (uint64_t s = 0; s < 8; ++s) {
    Affine p = deterministic_point(s), q = deterministic_point(s + 100);
    Affine expect = affine_add(p, q);
    PointR1 got = add(to_r1(p), to_r2(to_r1(q)));
    EXPECT_TRUE(on_curve(got));
    Affine got_aff = to_affine(got);
    EXPECT_EQ(got_aff.x, expect.x);
    EXPECT_EQ(got_aff.y, expect.y);
  }
}

TEST(Point, DoublingMatchesAffineLaw) {
  for (uint64_t s = 0; s < 8; ++s) {
    Affine p = deterministic_point(s);
    Affine expect = affine_add(p, p);
    PointR1 got = dbl(to_r1(p));
    EXPECT_TRUE(on_curve(got));
    Affine got_aff = to_affine(got);
    EXPECT_EQ(got_aff.x, expect.x);
    EXPECT_EQ(got_aff.y, expect.y);
  }
}

TEST(Point, DoublingEqualsSelfAddition) {
  // The unified addition formula is complete: P + P must equal dbl(P).
  for (uint64_t s = 0; s < 8; ++s) {
    PointR1 p = to_r1(deterministic_point(s));
    EXPECT_TRUE(equal(dbl(p), add(p, to_r2(p))));
  }
}

TEST(Point, AdditionCommutative) {
  for (uint64_t s = 0; s < 6; ++s) {
    PointR1 p = to_r1(deterministic_point(s));
    PointR1 q = to_r1(deterministic_point(s + 50));
    EXPECT_TRUE(equal(add(p, to_r2(q)), add(q, to_r2(p))));
  }
}

TEST(Point, AdditionAssociative) {
  for (uint64_t s = 0; s < 4; ++s) {
    PointR1 p = to_r1(deterministic_point(s));
    PointR1 q = to_r1(deterministic_point(s + 10));
    PointR1 r = to_r1(deterministic_point(s + 20));
    PointR1 pq_r = add(add(p, to_r2(q)), to_r2(r));
    PointR1 p_qr = add(p, to_r2(add(q, to_r2(r))));
    EXPECT_TRUE(equal(pq_r, p_qr));
  }
}

TEST(Point, NeutralElement) {
  PointR2 id2 = to_r2(identity());
  for (uint64_t s = 0; s < 6; ++s) {
    PointR1 p = to_r1(deterministic_point(s));
    EXPECT_TRUE(equal(add(p, id2), p));
    EXPECT_TRUE(equal(add(identity(), to_r2(p)), p));
  }
}

TEST(Point, InverseElement) {
  for (uint64_t s = 0; s < 6; ++s) {
    Affine p = deterministic_point(s);
    PointR1 sum = add(to_r1(p), to_r2(to_r1(neg(p))));
    EXPECT_TRUE(is_identity(sum));
    // neg_r2 agrees with affine negation.
    PointR1 sum2 = add(to_r1(p), neg_r2(to_r2(to_r1(p))));
    EXPECT_TRUE(is_identity(sum2));
  }
}

TEST(Point, NegR2Involution) {
  PointR1 p = to_r1(deterministic_point(3));
  PointR2 p2 = to_r2(p);
  PointR2 nn = neg_r2(neg_r2(p2));
  EXPECT_EQ(nn.xpy, p2.xpy);
  EXPECT_EQ(nn.ymx, p2.ymx);
  EXPECT_EQ(nn.z2, p2.z2);
  EXPECT_EQ(nn.dt2, p2.dt2);
}

TEST(Point, OrderTwoPoint) {
  // (0, -1) has order 2 on any twisted Edwards curve.
  Affine t{Fp2(), -Fp2::from_u64(1)};
  EXPECT_TRUE(on_curve(t));
  EXPECT_TRUE(is_identity(dbl(to_r1(t))));
}

TEST(Point, EqualHandlesScaledCoordinates) {
  PointR1 p = to_r1(deterministic_point(5));
  // Scale all projective coordinates by a random lambda.
  Fp2 lambda = Fp2::from_u64(0xdeadbeef, 0x1234);
  PointR1 scaled{p.X * lambda, p.Y * lambda, p.Z * lambda, p.Ta * lambda, p.Tb};
  EXPECT_TRUE(equal(p, scaled));
  EXPECT_FALSE(equal(p, dbl(p)));
}

TEST(Point, OnCurveRejectsOffCurvePoints) {
  Affine p = deterministic_point(2);
  Affine bad{p.x, p.y + Fp2::from_u64(1)};
  EXPECT_FALSE(on_curve(bad));
  PointR1 bad_r1 = to_r1(p);
  bad_r1.Ta = bad_r1.Ta + Fp2::from_u64(1);  // break T = XY/Z consistency
  EXPECT_FALSE(on_curve(bad_r1));
}

TEST(Point, ToR2MatchesDefinition) {
  PointR1 p = to_r1(deterministic_point(9));
  PointR2 r2 = to_r2(p);
  EXPECT_EQ(r2.xpy, p.X + p.Y);
  EXPECT_EQ(r2.ymx, p.Y - p.X);
  EXPECT_EQ(r2.z2, p.Z + p.Z);
  EXPECT_EQ(r2.dt2, curve_2d() * p.Ta * p.Tb);
}

TEST(Point, MixedAdditionMatchesFullAddition) {
  // add_mixed saves the Z1*z2 multiply by exploiting Z=1 in the affine
  // operand (z2 = 2 exactly); the resulting point must be the same.
  Rng rng(930);
  for (int i = 0; i < 20; ++i) {
    PointR1 p = to_r1(deterministic_point(static_cast<uint64_t>(400 + i)));
    for (int j = 0; j < i % 3; ++j) p = dbl(p);  // non-trivial Z
    Affine q = deterministic_point(static_cast<uint64_t>(500 + i));
    EXPECT_TRUE(equal(add_mixed(p, to_r2aff(q)), add(p, to_r2(to_r1(q)))));
  }
  // Mixed addition with the identity and with a negated entry.
  Affine id{Fp2(), Fp2::from_u64(1)};
  PointR1 p = dbl(to_r1(deterministic_point(10)));
  EXPECT_TRUE(equal(add_mixed(p, to_r2aff(id)), p));
  Affine q = deterministic_point(11);
  EXPECT_TRUE(equal(add_mixed(p, neg_r2aff(to_r2aff(q))), add(p, to_r2(to_r1(neg(q))))));
}

TEST(Point, BatchNormalizationMatchesElementwise) {
  // One shared inversion (Montgomery's trick) must reproduce exactly the
  // per-point to_affine results — bit for bit, since Fp2 is canonical.
  Rng rng(931);
  std::vector<PointR1> pts;
  for (int i = 0; i < 17; ++i) {
    PointR1 p = to_r1(deterministic_point(static_cast<uint64_t>(600 + i)));
    for (int j = 0; j <= i % 4; ++j) p = dbl(p);
    pts.push_back(p);
  }
  pts.push_back(identity());  // Z=1 entries must survive unharmed
  std::vector<Affine> batch = batch_to_affine(pts);
  ASSERT_EQ(batch.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    Affine one = to_affine(pts[i]);
    EXPECT_TRUE(batch[i].x == one.x && batch[i].y == one.y) << "i=" << i;
  }
  std::vector<PointR2Aff> cached = batch_to_r2aff(pts);
  ASSERT_EQ(cached.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    PointR2Aff one = to_r2aff(to_affine(pts[i]));
    EXPECT_TRUE(cached[i].xpy == one.xpy && cached[i].ymx == one.ymx &&
                cached[i].dt2 == one.dt2)
        << "i=" << i;
  }
  EXPECT_TRUE(batch_to_affine({}).empty());
}

}  // namespace
}  // namespace fourq::curve
