// Diffie-Hellman key agreement on FourQ and on X25519 — the two parties
// derive the same shared secret; a passive observer holding only the public
// values cannot (discrete log, paper §II-A).
#include <cstdio>

#include "baseline/x25519.hpp"
#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "hash/sha256.hpp"

int main() {
  using namespace fourq;

  std::printf("Diffie-Hellman on FourQ and X25519\n");
  std::printf("==================================\n\n");

  Rng rng(2026);

  // --- FourQ ---------------------------------------------------------------
  curve::Affine g{curve::candidate_generator_x(), curve::candidate_generator_y()};
  U256 a = rng.next_u256(), b = rng.next_u256();

  curve::Affine pub_a = curve::to_affine(curve::scalar_mul(a, g));
  curve::Affine pub_b = curve::to_affine(curve::scalar_mul(b, g));
  curve::Affine shared_a = curve::to_affine(curve::scalar_mul(a, pub_b));
  curve::Affine shared_b = curve::to_affine(curve::scalar_mul(b, pub_a));

  bool fourq_ok = shared_a.x == shared_b.x && shared_a.y == shared_b.y;
  auto key = hash::Sha256::digest(shared_a.x.to_hex());
  std::printf("FourQ:\n");
  std::printf("  Alice pub  : %s...\n", pub_a.x.to_hex().substr(0, 24).c_str());
  std::printf("  Bob   pub  : %s...\n", pub_b.x.to_hex().substr(0, 24).c_str());
  std::printf("  agreement  : %s\n", fourq_ok ? "shared secrets match" : "MISMATCH (bug!)");
  std::printf("  session key: %s\n\n", hash::digest_hex(key).substr(0, 32).c_str());

  // --- X25519 (RFC 7748) -----------------------------------------------------
  U256 sk_a = rng.next_u256(), sk_b = rng.next_u256();
  U256 xpub_a = baseline::x25519_base(sk_a);
  U256 xpub_b = baseline::x25519_base(sk_b);
  U256 xshared_a = baseline::x25519(sk_a, xpub_b);
  U256 xshared_b = baseline::x25519(sk_b, xpub_a);
  bool x_ok = xshared_a == xshared_b;
  std::printf("X25519:\n");
  std::printf("  Alice pub  : %s...\n", xpub_a.to_hex().substr(0, 24).c_str());
  std::printf("  Bob   pub  : %s...\n", xpub_b.to_hex().substr(0, 24).c_str());
  std::printf("  agreement  : %s\n", x_ok ? "shared secrets match" : "MISMATCH (bug!)");

  return (fourq_ok && x_ok) ? 0 : 1;
}
