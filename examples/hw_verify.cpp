// Hardware-offloaded signature verification: the host keeps the protocol
// logic (hashing, challenge derivation, the final point addition and
// comparison) and dispatches both scalar multiplications of the Schnorr
// verification equation [s]G == R + [e]Q to the modelled cryptoprocessor —
// the deployment the paper's chip targets (§I: a message-verification
// accelerator for roadside units).
#include <cstdio>

#include "asic/simulator.hpp"
#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "dsa/schnorrq.hpp"
#include "power/sotb65.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

namespace {

using namespace fourq;

// An "accelerator handle": the compiled functional SM program plus the
// silicon model. One [k]P per call, any base point.
class Accelerator {
 public:
  Accelerator()
      : sm_(trace::build_sm_trace({})),
        compiled_(sched::compile_program(sm_.program, {})),
        chip_(compiled_.sm.cycles()) {}

  curve::Affine scalar_mul(const U256& k, const curve::Affine& p, int* cycles) {
    trace::InputBindings b;
    b.emplace_back(sm_.in_zero, curve::Fp2());
    b.emplace_back(sm_.in_one, curve::Fp2::from_u64(1));
    b.emplace_back(sm_.in_two_d, curve::curve_2d());
    b.emplace_back(sm_.in_px, p.x);
    b.emplace_back(sm_.in_py, p.y);
    curve::Decomposition dec = curve::decompose(k);
    curve::RecodedScalar rec = curve::recode(dec.a);
    asic::SimResult res =
        asic::simulate(compiled_.sm, b, trace::EvalContext{&rec, dec.k_was_even});
    if (cycles != nullptr) *cycles = res.stats.cycles;
    return curve::Affine{res.outputs.at("x"), res.outputs.at("y")};
  }

  double latency_us(double vdd) const { return chip_.latency_us(vdd); }
  double energy_uj(double vdd) const { return chip_.energy_uj(vdd); }

 private:
  trace::SmTrace sm_;
  sched::CompileResult compiled_;
  power::Sotb65Model chip_;
};

}  // namespace

int main() {
  std::printf("Hardware-offloaded Schnorr verification\n");
  std::printf("=======================================\n\n");

  dsa::SchnorrQ scheme;
  Rng rng(77);
  auto kp = scheme.keygen(rng);
  const std::string msg = "CAM{vehicle=42,seq=7,pos=(35.71,139.76)}";
  auto sig = scheme.sign(kp, msg);
  std::printf("message   : \"%s\"\n", msg.c_str());
  std::printf("software  : %s\n\n",
              scheme.verify(kp.pub, msg, sig) ? "signature valid" : "INVALID (bug!)");

  Accelerator chip;
  // Host side: recompute the challenge, then offload the two SMs.
  U256 e = scheme.challenge(sig.r, kp.pub, msg);
  int cycles_sg = 0, cycles_eq = 0;
  curve::Affine sG = chip.scalar_mul(sig.s, scheme.generator(), &cycles_sg);
  curve::Affine eQ = chip.scalar_mul(e, kp.pub, &cycles_eq);
  // Host side: R + [e]Q and comparison.
  curve::PointR1 rhs = curve::add(curve::to_r1(sig.r), curve::to_r2(curve::to_r1(eQ)));
  curve::Affine rhs_aff = curve::to_affine(rhs);
  bool ok = sG.x == rhs_aff.x && sG.y == rhs_aff.y;

  std::printf("offloaded : [s]G on chip (%d cycles), [e]Q on chip (%d cycles)\n", cycles_sg,
              cycles_eq);
  std::printf("hardware  : %s\n\n", ok ? "signature valid" : "INVALID (bug!)");

  for (double v : {1.20, 0.32}) {
    double t = 2 * chip.latency_us(v);
    double en = 2 * chip.energy_uj(v);
    std::printf("projected @ %.2f V: %.1f us and %.2f uJ per verification (%.0f verifies/s)\n",
                v, t, en, 1e6 / t);
  }

  // Better: a verification is EXACTLY two scalar multiplications, so the
  // dual-stream program computes [s]G and [e]Q together on one datapath,
  // letting the scheduler fill each stream's multiplier stalls with the
  // other stream's work.
  {
    trace::DualSmTrace dual = trace::build_dual_sm_trace({});
    sched::CompileOptions copt;
    copt.cfg.rf_size = 128;
    sched::CompileResult rc = sched::compile_program(dual.program, copt);

    trace::InputBindings b;
    b.emplace_back(dual.in_zero, curve::Fp2());
    b.emplace_back(dual.in_one, curve::Fp2::from_u64(1));
    b.emplace_back(dual.in_two_d, curve::curve_2d());
    b.emplace_back(dual.in_px[0], scheme.generator().x);
    b.emplace_back(dual.in_py[0], scheme.generator().y);
    b.emplace_back(dual.in_px[1], kp.pub.x);
    b.emplace_back(dual.in_py[1], kp.pub.y);

    curve::Decomposition ds = curve::decompose(sig.s);
    curve::Decomposition de = curve::decompose(e);
    curve::RecodedScalar rs = curve::recode(ds.a);
    curve::RecodedScalar re = curve::recode(de.a);
    trace::EvalContext ctx;
    ctx.recoded = &rs;
    ctx.k_was_even = ds.k_was_even;
    ctx.recoded2 = &re;
    ctx.k2_was_even = de.k_was_even;

    asic::SimResult res = asic::simulate(rc.sm, b, ctx);
    curve::Affine sg{res.outputs.at("x0"), res.outputs.at("y0")};
    curve::Affine eq{res.outputs.at("x1"), res.outputs.at("y1")};
    curve::PointR1 rhs2 =
        curve::add(curve::to_r1(sig.r), curve::to_r2(curve::to_r1(eq)));
    bool dual_ok = curve::equal(curve::to_r1(sg), rhs2);
    int seq_cycles = 2 * cycles_sg;
    std::printf("\ndual-stream: both SMs co-scheduled in %d cycles (vs %d sequential, %.0f%%\n"
                "             faster per verification): %s\n",
                res.stats.cycles, seq_cycles,
                100.0 * (seq_cycles - res.stats.cycles) / seq_cycles,
                dual_ok ? "signature valid" : "INVALID (bug!)");
    ok = ok && dual_ok;
  }

  // Negative check: a tampered message must fail on the hardware path too.
  U256 e_bad = scheme.challenge(sig.r, kp.pub, msg + "!");
  curve::Affine eQ_bad = chip.scalar_mul(e_bad, kp.pub, nullptr);
  curve::PointR1 rhs_bad =
      curve::add(curve::to_r1(sig.r), curve::to_r2(curve::to_r1(eQ_bad)));
  bool bad_ok = curve::equal(curve::to_r1(sG), rhs_bad);
  std::printf("\ntampered  : %s\n", bad_ok ? "ACCEPTED (bug!)" : "rejected");
  return (ok && !bad_ok) ? 0 : 1;
}
