// The paper's motivating scenario (§I): message authentication for
// intelligent transportation systems. A six-lane intersection produces a
// flood of signed safety messages (the paper cites ~1000 verifications per
// second from [5]); this example signs and verifies a simulated message
// stream with Schnorr-on-FourQ and reports whether the software baseline —
// and the modelled ASIC — keep up.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dsa/schnorrq.hpp"
#include "power/sotb65.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

int main() {
  using namespace fourq;
  using Clock = std::chrono::steady_clock;

  std::printf("ITS message authentication (paper §I scenario)\n");
  std::printf("==============================================\n\n");

  dsa::SchnorrQ scheme;
  Rng rng(7);

  // A small fleet of vehicles, each with its own key pair.
  constexpr int kVehicles = 8;
  std::vector<dsa::SchnorrQ::KeyPair> fleet;
  for (int v = 0; v < kVehicles; ++v) fleet.push_back(scheme.keygen(rng));

  // Generate a burst of CAM-style messages.
  constexpr int kMessages = 64;
  struct Msg {
    int vehicle;
    std::string body;
    dsa::SchnorrQ::Signature sig;
  };
  std::vector<Msg> traffic;
  auto t0 = Clock::now();
  for (int i = 0; i < kMessages; ++i) {
    int v = static_cast<int>(rng.next_below(kVehicles));
    std::string body = "CAM{vehicle=" + std::to_string(v) + ",seq=" + std::to_string(i) +
                       ",pos=(35.71,139.76),speed=12.4}";
    traffic.push_back(Msg{v, body, scheme.sign(fleet[static_cast<size_t>(v)], body)});
  }
  double sign_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count() / kMessages;

  // Verify the whole burst (one corrupted message injected).
  traffic[kMessages / 2].body += " [tampered]";
  int valid = 0, rejected = 0;
  t0 = Clock::now();
  for (const Msg& m : traffic) {
    if (scheme.verify(fleet[static_cast<size_t>(m.vehicle)].pub, m.body, m.sig))
      ++valid;
    else
      ++rejected;
  }
  double verify_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count() / kMessages;

  std::printf("messages signed     : %d (%.0f us/sign, %.0f signs/s software)\n", kMessages,
              sign_us, 1e6 / sign_us);
  std::printf("messages verified   : %d valid, %d rejected (1 tampered injected)\n", valid,
              rejected);
  std::printf("verify rate (sw)    : %.0f msgs/s on this host\n", 1e6 / verify_us);

  // Batch verification: one multi-scalar multiplication for the whole
  // burst. The tampered message makes the batch fail, and per-item
  // verification isolates it — the production pattern for message floods.
  std::vector<dsa::SchnorrQ::BatchItem> batch;
  for (const Msg& m : traffic)
    batch.push_back({fleet[static_cast<size_t>(m.vehicle)].pub, m.body, m.sig});
  t0 = Clock::now();
  bool batch_ok = scheme.verify_batch(batch, rng);
  double batch_us = std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
  std::printf("batch verify        : %s in %.0f us total (%.1f us/msg, %.1fx vs per-item)\n",
              batch_ok ? "accepted (bug: tampered batch!)" : "rejected as expected",
              batch_us, batch_us / kMessages, verify_us / (batch_us / kMessages));
  batch.erase(batch.begin() + kMessages / 2);  // drop the tampered message
  std::printf("batch w/o tampered  : %s\n\n",
              scheme.verify_batch(batch, rng) ? "accepted" : "REJECTED (bug!)");

  // What the modelled ASIC would sustain: a verification costs ~2 scalar
  // multiplications (the dominant cost; hashing is negligible).
  trace::SmTraceOptions topt;
  topt.endo = trace::EndoVariant::kPaperCost;
  sched::CompileResult r = sched::compile_program(trace::build_sm_trace(topt).program, {});
  power::Sotb65Model chip(r.sm.cycles());
  for (double v : {1.20, 0.32}) {
    double sm_us = chip.latency_us(v);
    double verifies_per_s = 1e6 / (2.0 * sm_us);
    std::printf("ASIC @ %.2f V: %.1f us/SM -> ~%.0f verifies/s (%.2f uJ/SM)\n", v, sm_us,
                verifies_per_s, chip.energy_uj(v));
  }
  std::printf("\nPaper target: ~1000 verifications/s for a congested six-lane road [5];\n"
              "the 1.2 V operating point exceeds it by ~50x, leaving headroom for the\n"
              "100 Mb/s networks the paper anticipates.\n");
  return 0;
}
