// Quickstart: key generation, scalar multiplication, and Schnorr
// signatures on FourQ using the library's public API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "dsa/schnorrq.hpp"

int main() {
  using namespace fourq;

  std::printf("FourQ quickstart\n================\n\n");

  // 1. The curve: E/F_{p^2}: -x^2 + y^2 = 1 + d x^2 y^2, p = 2^127 - 1.
  std::printf("curve constant d = %s\n\n", curve::curve_d().to_hex().c_str());

  // 2. Scalar multiplication: [k]P via the 4-way decomposed, table-based
  //    Algorithm 1 (the computation the paper's ASIC accelerates).
  Rng rng(42);
  curve::Affine p = curve::deterministic_point(7);
  U256 k = rng.next_u256();
  curve::PointR1 q = curve::scalar_mul(k, p);
  curve::Affine qa = curve::to_affine(q);
  std::printf("k        = %s\n", k.to_hex().c_str());
  std::printf("[k]P.x   = %s\n", qa.x.to_hex().c_str());
  std::printf("[k]P.y   = %s\n", qa.y.to_hex().c_str());
  std::printf("on curve : %s\n\n", curve::on_curve(qa) ? "yes" : "NO (bug!)");

  // Cross-check against the classic double-and-add (paper §II-A).
  bool agree = curve::equal(q, curve::scalar_mul_reference(k, p));
  std::printf("matches double-and-add reference: %s\n\n", agree ? "yes" : "NO (bug!)");

  // 3. Schnorr signatures over the validated FourQ subgroup.
  dsa::SchnorrQ scheme;
  auto keys = scheme.keygen(rng);
  std::printf("generated key pair (secret %s...)\n", keys.secret.to_hex().substr(0, 16).c_str());

  const std::string msg = "signal phase change request: intersection 12, north approach";
  auto sig = scheme.sign(keys, msg);
  std::printf("signed   : \"%s\"\n", msg.c_str());
  std::printf("verify   : %s\n", scheme.verify(keys.pub, msg, sig) ? "valid" : "INVALID");
  std::printf("tampered : %s\n",
              scheme.verify(keys.pub, "signal phase change request: intersection 13, north approach",
                            sig)
                  ? "VALID (bug!)"
                  : "rejected");
  return 0;
}
