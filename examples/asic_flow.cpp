// The paper's complete automated flow (§III-C), end to end:
//   1. execute Algorithm 1 under the tracing field type -> microinstruction
//      trace (the paper records a Python run; we record a C++ run);
//   2. extract the dependency DAG and solve the job-shop scheduling problem;
//   3. allocate the register file and generate the control ROM;
//   4. run the scheduled microcode through the cycle-accurate datapath model
//      and check it against the software golden model;
//   5. translate cycles into silicon latency/energy with the SOTB-65nm model.
#include <cstdio>

#include "asic/simulator.hpp"
#include "common/rng.hpp"
#include "curve/scalarmul.hpp"
#include "power/area.hpp"
#include "power/sotb65.hpp"
#include "sched/compile.hpp"
#include "trace/sm_trace.hpp"

int main() {
  using namespace fourq;

  std::printf("FourQ ASIC design flow demo (paper §III)\n");
  std::printf("========================================\n\n");

  // Step 1: trace.
  trace::SmTrace sm = trace::build_sm_trace({});  // functional variant
  trace::OpStats st = trace::count_ops(sm.program);
  std::printf("[1] traced Algorithm 1: %d Fp2 muls + %d Fp2 add/subs (%d inputs)\n",
              st.muls, st.addsubs, st.inputs);
  std::printf("    multiplication share: %.1f%% (paper profiles ~57%%)\n\n",
              100.0 * st.mul_fraction());

  // Step 2+3: schedule and compile.
  sched::CompileOptions copt;
  copt.solver = sched::Solver::kAnneal;
  copt.anneal.iterations = 200;
  sched::CompileResult r = sched::compile_program(sm.program, copt);
  std::printf("[2] scheduled on 1 pipelined MUL (II=1, lat %d) + 1 ADD/SUB, 4R/2W RF:\n",
              copt.cfg.mul_latency);
  std::printf("    makespan %d cycles (critical path >= %d)\n", r.schedule.makespan,
              r.problem.critical_path() + 1);
  std::printf("[3] register allocation: %d of %d RF entries; ROM: %d control words\n\n",
              r.register_pressure, copt.cfg.rf_size, r.sm.cycles());

  // Step 4: simulate and check.
  curve::Affine p = curve::deterministic_point(11);
  trace::InputBindings bind;
  bind.emplace_back(sm.in_zero, curve::Fp2());
  bind.emplace_back(sm.in_one, curve::Fp2::from_u64(1));
  bind.emplace_back(sm.in_two_d, curve::curve_2d());
  bind.emplace_back(sm.in_px, p.x);
  bind.emplace_back(sm.in_py, p.y);

  Rng rng(99);
  U256 k = rng.next_u256();
  curve::Decomposition dec = curve::decompose(k);
  curve::RecodedScalar rec = curve::recode(dec.a);
  asic::SimResult simres =
      asic::simulate(r.sm, bind, trace::EvalContext{&rec, dec.k_was_even});
  curve::Affine expect = curve::to_affine(curve::scalar_mul(k, p));
  bool ok = simres.outputs.at("x") == expect.x && simres.outputs.at("y") == expect.y;
  std::printf("[4] cycle-accurate simulation of [k]P, k=%s...\n", k.to_hex().substr(0, 16).c_str());
  std::printf("    datapath output == software golden model: %s\n", ok ? "MATCH" : "MISMATCH");
  std::printf("    multiplier utilisation %.0f%%, %d forwarded operands, peak %d RF reads/cycle\n\n",
              100.0 * simres.stats.mul_utilisation(), simres.stats.forwarded_operands,
              simres.stats.max_reads_in_cycle);

  // Step 5: silicon projection.
  power::Sotb65Model chip(r.sm.cycles());
  power::AreaOptions aopt;
  aopt.rom_words = r.sm.cycles();
  std::printf("[5] silicon projection (65 nm SOTB model, %0.f kGE):\n",
              power::estimate_area(aopt).total_kge());
  for (double v : {1.20, 0.90, 0.60, 0.32}) {
    auto op = chip.at(v);
    std::printf("    VDD %.2f V: fmax %7.2f MHz   latency %9.2f us   energy %6.3f uJ\n", v,
                op.fmax_mhz, op.latency_us, op.energy_uj);
  }
  std::printf("\n(The functional variant traced here carries the 192-doubling\n"
              "endomorphism substitute; the paper-cost variant used by the Table II\n"
              "bench has the program length of the real chip. See DESIGN.md §2.)\n");
  return ok ? 0 : 1;
}
