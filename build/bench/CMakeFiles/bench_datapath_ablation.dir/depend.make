# Empty dependencies file for bench_datapath_ablation.
# This may be replaced when dependencies are built.
