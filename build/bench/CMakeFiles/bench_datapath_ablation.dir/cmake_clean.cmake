file(REMOVE_RECURSE
  "CMakeFiles/bench_datapath_ablation.dir/bench_datapath_ablation.cpp.o"
  "CMakeFiles/bench_datapath_ablation.dir/bench_datapath_ablation.cpp.o.d"
  "bench_datapath_ablation"
  "bench_datapath_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datapath_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
