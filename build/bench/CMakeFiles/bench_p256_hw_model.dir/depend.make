# Empty dependencies file for bench_p256_hw_model.
# This may be replaced when dependencies are built.
