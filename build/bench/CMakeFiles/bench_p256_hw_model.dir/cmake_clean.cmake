file(REMOVE_RECURSE
  "CMakeFiles/bench_p256_hw_model.dir/bench_p256_hw_model.cpp.o"
  "CMakeFiles/bench_p256_hw_model.dir/bench_p256_hw_model.cpp.o.d"
  "bench_p256_hw_model"
  "bench_p256_hw_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p256_hw_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
