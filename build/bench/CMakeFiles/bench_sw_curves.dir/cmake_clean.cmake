file(REMOVE_RECURSE
  "CMakeFiles/bench_sw_curves.dir/bench_sw_curves.cpp.o"
  "CMakeFiles/bench_sw_curves.dir/bench_sw_curves.cpp.o.d"
  "bench_sw_curves"
  "bench_sw_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sw_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
