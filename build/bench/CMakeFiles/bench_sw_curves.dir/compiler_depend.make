# Empty compiler generated dependencies file for bench_sw_curves.
# This may be replaced when dependencies are built.
