# Empty compiler generated dependencies file for bench_profile_opmix.
# This may be replaced when dependencies are built.
