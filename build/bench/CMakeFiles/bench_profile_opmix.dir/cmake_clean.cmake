file(REMOVE_RECURSE
  "CMakeFiles/bench_profile_opmix.dir/bench_profile_opmix.cpp.o"
  "CMakeFiles/bench_profile_opmix.dir/bench_profile_opmix.cpp.o.d"
  "bench_profile_opmix"
  "bench_profile_opmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profile_opmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
