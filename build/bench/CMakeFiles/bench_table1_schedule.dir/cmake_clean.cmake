file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_schedule.dir/bench_table1_schedule.cpp.o"
  "CMakeFiles/bench_table1_schedule.dir/bench_table1_schedule.cpp.o.d"
  "bench_table1_schedule"
  "bench_table1_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
