file(REMOVE_RECURSE
  "CMakeFiles/bench_field_ops.dir/bench_field_ops.cpp.o"
  "CMakeFiles/bench_field_ops.dir/bench_field_ops.cpp.o.d"
  "bench_field_ops"
  "bench_field_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_field_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
