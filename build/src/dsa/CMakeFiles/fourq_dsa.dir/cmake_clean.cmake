file(REMOVE_RECURSE
  "CMakeFiles/fourq_dsa.dir/ecdsa_fourq.cpp.o"
  "CMakeFiles/fourq_dsa.dir/ecdsa_fourq.cpp.o.d"
  "CMakeFiles/fourq_dsa.dir/ecdsa_p256.cpp.o"
  "CMakeFiles/fourq_dsa.dir/ecdsa_p256.cpp.o.d"
  "CMakeFiles/fourq_dsa.dir/schnorrq.cpp.o"
  "CMakeFiles/fourq_dsa.dir/schnorrq.cpp.o.d"
  "libfourq_dsa.a"
  "libfourq_dsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_dsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
