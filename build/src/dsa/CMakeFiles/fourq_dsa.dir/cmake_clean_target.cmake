file(REMOVE_RECURSE
  "libfourq_dsa.a"
)
