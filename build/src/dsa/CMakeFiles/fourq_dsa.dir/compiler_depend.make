# Empty compiler generated dependencies file for fourq_dsa.
# This may be replaced when dependencies are built.
