# Empty compiler generated dependencies file for fourq_power.
# This may be replaced when dependencies are built.
