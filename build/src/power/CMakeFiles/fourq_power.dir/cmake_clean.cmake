file(REMOVE_RECURSE
  "CMakeFiles/fourq_power.dir/activity_energy.cpp.o"
  "CMakeFiles/fourq_power.dir/activity_energy.cpp.o.d"
  "CMakeFiles/fourq_power.dir/area.cpp.o"
  "CMakeFiles/fourq_power.dir/area.cpp.o.d"
  "CMakeFiles/fourq_power.dir/sotb65.cpp.o"
  "CMakeFiles/fourq_power.dir/sotb65.cpp.o.d"
  "libfourq_power.a"
  "libfourq_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
