file(REMOVE_RECURSE
  "libfourq_power.a"
)
