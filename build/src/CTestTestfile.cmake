# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("field")
subdirs("curve")
subdirs("baseline")
subdirs("hash")
subdirs("dsa")
subdirs("trace")
subdirs("sched")
subdirs("asic")
subdirs("power")
subdirs("models")
subdirs("rtl")
