
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/eval.cpp" "src/trace/CMakeFiles/fourq_trace.dir/eval.cpp.o" "gcc" "src/trace/CMakeFiles/fourq_trace.dir/eval.cpp.o.d"
  "/root/repo/src/trace/ir.cpp" "src/trace/CMakeFiles/fourq_trace.dir/ir.cpp.o" "gcc" "src/trace/CMakeFiles/fourq_trace.dir/ir.cpp.o.d"
  "/root/repo/src/trace/optimize.cpp" "src/trace/CMakeFiles/fourq_trace.dir/optimize.cpp.o" "gcc" "src/trace/CMakeFiles/fourq_trace.dir/optimize.cpp.o.d"
  "/root/repo/src/trace/sm_trace.cpp" "src/trace/CMakeFiles/fourq_trace.dir/sm_trace.cpp.o" "gcc" "src/trace/CMakeFiles/fourq_trace.dir/sm_trace.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/trace/CMakeFiles/fourq_trace.dir/tracer.cpp.o" "gcc" "src/trace/CMakeFiles/fourq_trace.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/curve/CMakeFiles/fourq_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/fourq_field.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fourq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
