# Empty dependencies file for fourq_trace.
# This may be replaced when dependencies are built.
