file(REMOVE_RECURSE
  "CMakeFiles/fourq_trace.dir/eval.cpp.o"
  "CMakeFiles/fourq_trace.dir/eval.cpp.o.d"
  "CMakeFiles/fourq_trace.dir/ir.cpp.o"
  "CMakeFiles/fourq_trace.dir/ir.cpp.o.d"
  "CMakeFiles/fourq_trace.dir/optimize.cpp.o"
  "CMakeFiles/fourq_trace.dir/optimize.cpp.o.d"
  "CMakeFiles/fourq_trace.dir/sm_trace.cpp.o"
  "CMakeFiles/fourq_trace.dir/sm_trace.cpp.o.d"
  "CMakeFiles/fourq_trace.dir/tracer.cpp.o"
  "CMakeFiles/fourq_trace.dir/tracer.cpp.o.d"
  "libfourq_trace.a"
  "libfourq_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
