file(REMOVE_RECURSE
  "libfourq_trace.a"
)
