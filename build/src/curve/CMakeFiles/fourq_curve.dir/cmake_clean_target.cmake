file(REMOVE_RECURSE
  "libfourq_curve.a"
)
