file(REMOVE_RECURSE
  "CMakeFiles/fourq_curve.dir/encoding.cpp.o"
  "CMakeFiles/fourq_curve.dir/encoding.cpp.o.d"
  "CMakeFiles/fourq_curve.dir/fixed_base.cpp.o"
  "CMakeFiles/fourq_curve.dir/fixed_base.cpp.o.d"
  "CMakeFiles/fourq_curve.dir/multiscalar.cpp.o"
  "CMakeFiles/fourq_curve.dir/multiscalar.cpp.o.d"
  "CMakeFiles/fourq_curve.dir/params.cpp.o"
  "CMakeFiles/fourq_curve.dir/params.cpp.o.d"
  "CMakeFiles/fourq_curve.dir/point.cpp.o"
  "CMakeFiles/fourq_curve.dir/point.cpp.o.d"
  "CMakeFiles/fourq_curve.dir/scalar.cpp.o"
  "CMakeFiles/fourq_curve.dir/scalar.cpp.o.d"
  "CMakeFiles/fourq_curve.dir/scalarmul.cpp.o"
  "CMakeFiles/fourq_curve.dir/scalarmul.cpp.o.d"
  "libfourq_curve.a"
  "libfourq_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
