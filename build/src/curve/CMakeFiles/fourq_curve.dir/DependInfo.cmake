
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/curve/encoding.cpp" "src/curve/CMakeFiles/fourq_curve.dir/encoding.cpp.o" "gcc" "src/curve/CMakeFiles/fourq_curve.dir/encoding.cpp.o.d"
  "/root/repo/src/curve/fixed_base.cpp" "src/curve/CMakeFiles/fourq_curve.dir/fixed_base.cpp.o" "gcc" "src/curve/CMakeFiles/fourq_curve.dir/fixed_base.cpp.o.d"
  "/root/repo/src/curve/multiscalar.cpp" "src/curve/CMakeFiles/fourq_curve.dir/multiscalar.cpp.o" "gcc" "src/curve/CMakeFiles/fourq_curve.dir/multiscalar.cpp.o.d"
  "/root/repo/src/curve/params.cpp" "src/curve/CMakeFiles/fourq_curve.dir/params.cpp.o" "gcc" "src/curve/CMakeFiles/fourq_curve.dir/params.cpp.o.d"
  "/root/repo/src/curve/point.cpp" "src/curve/CMakeFiles/fourq_curve.dir/point.cpp.o" "gcc" "src/curve/CMakeFiles/fourq_curve.dir/point.cpp.o.d"
  "/root/repo/src/curve/scalar.cpp" "src/curve/CMakeFiles/fourq_curve.dir/scalar.cpp.o" "gcc" "src/curve/CMakeFiles/fourq_curve.dir/scalar.cpp.o.d"
  "/root/repo/src/curve/scalarmul.cpp" "src/curve/CMakeFiles/fourq_curve.dir/scalarmul.cpp.o" "gcc" "src/curve/CMakeFiles/fourq_curve.dir/scalarmul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/field/CMakeFiles/fourq_field.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fourq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
