# Empty dependencies file for fourq_curve.
# This may be replaced when dependencies are built.
