file(REMOVE_RECURSE
  "libfourq_asic.a"
)
