
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asic/looped.cpp" "src/asic/CMakeFiles/fourq_asic.dir/looped.cpp.o" "gcc" "src/asic/CMakeFiles/fourq_asic.dir/looped.cpp.o.d"
  "/root/repo/src/asic/machine_state.cpp" "src/asic/CMakeFiles/fourq_asic.dir/machine_state.cpp.o" "gcc" "src/asic/CMakeFiles/fourq_asic.dir/machine_state.cpp.o.d"
  "/root/repo/src/asic/romfile.cpp" "src/asic/CMakeFiles/fourq_asic.dir/romfile.cpp.o" "gcc" "src/asic/CMakeFiles/fourq_asic.dir/romfile.cpp.o.d"
  "/root/repo/src/asic/simulator.cpp" "src/asic/CMakeFiles/fourq_asic.dir/simulator.cpp.o" "gcc" "src/asic/CMakeFiles/fourq_asic.dir/simulator.cpp.o.d"
  "/root/repo/src/asic/verilog.cpp" "src/asic/CMakeFiles/fourq_asic.dir/verilog.cpp.o" "gcc" "src/asic/CMakeFiles/fourq_asic.dir/verilog.cpp.o.d"
  "/root/repo/src/asic/waveform.cpp" "src/asic/CMakeFiles/fourq_asic.dir/waveform.cpp.o" "gcc" "src/asic/CMakeFiles/fourq_asic.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/fourq_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fourq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/fourq_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/fourq_field.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fourq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
