# Empty compiler generated dependencies file for fourq_asic.
# This may be replaced when dependencies are built.
