file(REMOVE_RECURSE
  "CMakeFiles/fourq_asic.dir/looped.cpp.o"
  "CMakeFiles/fourq_asic.dir/looped.cpp.o.d"
  "CMakeFiles/fourq_asic.dir/machine_state.cpp.o"
  "CMakeFiles/fourq_asic.dir/machine_state.cpp.o.d"
  "CMakeFiles/fourq_asic.dir/romfile.cpp.o"
  "CMakeFiles/fourq_asic.dir/romfile.cpp.o.d"
  "CMakeFiles/fourq_asic.dir/simulator.cpp.o"
  "CMakeFiles/fourq_asic.dir/simulator.cpp.o.d"
  "CMakeFiles/fourq_asic.dir/verilog.cpp.o"
  "CMakeFiles/fourq_asic.dir/verilog.cpp.o.d"
  "CMakeFiles/fourq_asic.dir/waveform.cpp.o"
  "CMakeFiles/fourq_asic.dir/waveform.cpp.o.d"
  "libfourq_asic.a"
  "libfourq_asic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
