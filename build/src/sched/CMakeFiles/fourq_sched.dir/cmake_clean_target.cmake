file(REMOVE_RECURSE
  "libfourq_sched.a"
)
