
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/anneal.cpp" "src/sched/CMakeFiles/fourq_sched.dir/anneal.cpp.o" "gcc" "src/sched/CMakeFiles/fourq_sched.dir/anneal.cpp.o.d"
  "/root/repo/src/sched/bnb.cpp" "src/sched/CMakeFiles/fourq_sched.dir/bnb.cpp.o" "gcc" "src/sched/CMakeFiles/fourq_sched.dir/bnb.cpp.o.d"
  "/root/repo/src/sched/compile.cpp" "src/sched/CMakeFiles/fourq_sched.dir/compile.cpp.o" "gcc" "src/sched/CMakeFiles/fourq_sched.dir/compile.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/sched/CMakeFiles/fourq_sched.dir/list_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/fourq_sched.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/microcode.cpp" "src/sched/CMakeFiles/fourq_sched.dir/microcode.cpp.o" "gcc" "src/sched/CMakeFiles/fourq_sched.dir/microcode.cpp.o.d"
  "/root/repo/src/sched/modulo.cpp" "src/sched/CMakeFiles/fourq_sched.dir/modulo.cpp.o" "gcc" "src/sched/CMakeFiles/fourq_sched.dir/modulo.cpp.o.d"
  "/root/repo/src/sched/problem.cpp" "src/sched/CMakeFiles/fourq_sched.dir/problem.cpp.o" "gcc" "src/sched/CMakeFiles/fourq_sched.dir/problem.cpp.o.d"
  "/root/repo/src/sched/regalloc.cpp" "src/sched/CMakeFiles/fourq_sched.dir/regalloc.cpp.o" "gcc" "src/sched/CMakeFiles/fourq_sched.dir/regalloc.cpp.o.d"
  "/root/repo/src/sched/validate.cpp" "src/sched/CMakeFiles/fourq_sched.dir/validate.cpp.o" "gcc" "src/sched/CMakeFiles/fourq_sched.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/fourq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/fourq_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/fourq_field.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fourq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
