# Empty dependencies file for fourq_sched.
# This may be replaced when dependencies are built.
