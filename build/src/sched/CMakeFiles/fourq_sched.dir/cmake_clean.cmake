file(REMOVE_RECURSE
  "CMakeFiles/fourq_sched.dir/anneal.cpp.o"
  "CMakeFiles/fourq_sched.dir/anneal.cpp.o.d"
  "CMakeFiles/fourq_sched.dir/bnb.cpp.o"
  "CMakeFiles/fourq_sched.dir/bnb.cpp.o.d"
  "CMakeFiles/fourq_sched.dir/compile.cpp.o"
  "CMakeFiles/fourq_sched.dir/compile.cpp.o.d"
  "CMakeFiles/fourq_sched.dir/list_scheduler.cpp.o"
  "CMakeFiles/fourq_sched.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/fourq_sched.dir/microcode.cpp.o"
  "CMakeFiles/fourq_sched.dir/microcode.cpp.o.d"
  "CMakeFiles/fourq_sched.dir/modulo.cpp.o"
  "CMakeFiles/fourq_sched.dir/modulo.cpp.o.d"
  "CMakeFiles/fourq_sched.dir/problem.cpp.o"
  "CMakeFiles/fourq_sched.dir/problem.cpp.o.d"
  "CMakeFiles/fourq_sched.dir/regalloc.cpp.o"
  "CMakeFiles/fourq_sched.dir/regalloc.cpp.o.d"
  "CMakeFiles/fourq_sched.dir/validate.cpp.o"
  "CMakeFiles/fourq_sched.dir/validate.cpp.o.d"
  "libfourq_sched.a"
  "libfourq_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
