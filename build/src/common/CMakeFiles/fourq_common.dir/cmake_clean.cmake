file(REMOVE_RECURSE
  "CMakeFiles/fourq_common.dir/hexutil.cpp.o"
  "CMakeFiles/fourq_common.dir/hexutil.cpp.o.d"
  "CMakeFiles/fourq_common.dir/modint.cpp.o"
  "CMakeFiles/fourq_common.dir/modint.cpp.o.d"
  "CMakeFiles/fourq_common.dir/rng.cpp.o"
  "CMakeFiles/fourq_common.dir/rng.cpp.o.d"
  "CMakeFiles/fourq_common.dir/u256.cpp.o"
  "CMakeFiles/fourq_common.dir/u256.cpp.o.d"
  "libfourq_common.a"
  "libfourq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
