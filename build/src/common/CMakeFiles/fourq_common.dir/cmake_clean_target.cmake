file(REMOVE_RECURSE
  "libfourq_common.a"
)
