# Empty dependencies file for fourq_common.
# This may be replaced when dependencies are built.
