# Empty compiler generated dependencies file for fourq_hash.
# This may be replaced when dependencies are built.
