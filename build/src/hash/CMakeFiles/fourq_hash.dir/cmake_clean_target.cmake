file(REMOVE_RECURSE
  "libfourq_hash.a"
)
