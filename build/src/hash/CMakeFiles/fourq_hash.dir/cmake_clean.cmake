file(REMOVE_RECURSE
  "CMakeFiles/fourq_hash.dir/hmac.cpp.o"
  "CMakeFiles/fourq_hash.dir/hmac.cpp.o.d"
  "CMakeFiles/fourq_hash.dir/rfc6979.cpp.o"
  "CMakeFiles/fourq_hash.dir/rfc6979.cpp.o.d"
  "CMakeFiles/fourq_hash.dir/sha256.cpp.o"
  "CMakeFiles/fourq_hash.dir/sha256.cpp.o.d"
  "libfourq_hash.a"
  "libfourq_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
