file(REMOVE_RECURSE
  "libfourq_rtl.a"
)
