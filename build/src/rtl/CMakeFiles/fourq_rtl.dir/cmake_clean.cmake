file(REMOVE_RECURSE
  "CMakeFiles/fourq_rtl.dir/fp2_mul_pipeline.cpp.o"
  "CMakeFiles/fourq_rtl.dir/fp2_mul_pipeline.cpp.o.d"
  "libfourq_rtl.a"
  "libfourq_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
