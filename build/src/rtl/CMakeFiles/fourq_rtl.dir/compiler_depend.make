# Empty compiler generated dependencies file for fourq_rtl.
# This may be replaced when dependencies are built.
