# Empty dependencies file for fourq_models.
# This may be replaced when dependencies are built.
