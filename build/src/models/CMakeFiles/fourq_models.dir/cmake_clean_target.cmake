file(REMOVE_RECURSE
  "libfourq_models.a"
)
