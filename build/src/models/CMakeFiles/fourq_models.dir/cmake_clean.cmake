file(REMOVE_RECURSE
  "CMakeFiles/fourq_models.dir/p256_hw.cpp.o"
  "CMakeFiles/fourq_models.dir/p256_hw.cpp.o.d"
  "libfourq_models.a"
  "libfourq_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
