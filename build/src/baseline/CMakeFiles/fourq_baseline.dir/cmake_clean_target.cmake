file(REMOVE_RECURSE
  "libfourq_baseline.a"
)
