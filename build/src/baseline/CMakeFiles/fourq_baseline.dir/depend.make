# Empty dependencies file for fourq_baseline.
# This may be replaced when dependencies are built.
