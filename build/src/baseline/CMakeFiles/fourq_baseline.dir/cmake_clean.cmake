file(REMOVE_RECURSE
  "CMakeFiles/fourq_baseline.dir/p256.cpp.o"
  "CMakeFiles/fourq_baseline.dir/p256.cpp.o.d"
  "CMakeFiles/fourq_baseline.dir/x25519.cpp.o"
  "CMakeFiles/fourq_baseline.dir/x25519.cpp.o.d"
  "libfourq_baseline.a"
  "libfourq_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
