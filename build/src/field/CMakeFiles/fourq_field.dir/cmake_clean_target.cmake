file(REMOVE_RECURSE
  "libfourq_field.a"
)
