file(REMOVE_RECURSE
  "CMakeFiles/fourq_field.dir/fp.cpp.o"
  "CMakeFiles/fourq_field.dir/fp.cpp.o.d"
  "CMakeFiles/fourq_field.dir/fp2.cpp.o"
  "CMakeFiles/fourq_field.dir/fp2.cpp.o.d"
  "libfourq_field.a"
  "libfourq_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourq_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
