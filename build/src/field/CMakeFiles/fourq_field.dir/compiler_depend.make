# Empty compiler generated dependencies file for fourq_field.
# This may be replaced when dependencies are built.
