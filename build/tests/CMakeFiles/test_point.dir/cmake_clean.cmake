file(REMOVE_RECURSE
  "CMakeFiles/test_point.dir/test_point.cpp.o"
  "CMakeFiles/test_point.dir/test_point.cpp.o.d"
  "test_point"
  "test_point.pdb"
  "test_point[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
