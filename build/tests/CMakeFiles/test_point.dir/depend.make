# Empty dependencies file for test_point.
# This may be replaced when dependencies are built.
