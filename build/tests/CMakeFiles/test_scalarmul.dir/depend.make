# Empty dependencies file for test_scalarmul.
# This may be replaced when dependencies are built.
