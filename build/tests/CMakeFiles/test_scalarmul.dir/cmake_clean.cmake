file(REMOVE_RECURSE
  "CMakeFiles/test_scalarmul.dir/test_scalarmul.cpp.o"
  "CMakeFiles/test_scalarmul.dir/test_scalarmul.cpp.o.d"
  "test_scalarmul"
  "test_scalarmul.pdb"
  "test_scalarmul[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scalarmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
