
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/test_models.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/test_models.dir/test_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fourq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/fourq_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/fourq_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fourq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/fourq_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/fourq_field.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
