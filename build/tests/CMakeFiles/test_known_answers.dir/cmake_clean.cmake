file(REMOVE_RECURSE
  "CMakeFiles/test_known_answers.dir/test_known_answers.cpp.o"
  "CMakeFiles/test_known_answers.dir/test_known_answers.cpp.o.d"
  "test_known_answers"
  "test_known_answers.pdb"
  "test_known_answers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_known_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
