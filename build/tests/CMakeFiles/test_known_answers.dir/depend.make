# Empty dependencies file for test_known_answers.
# This may be replaced when dependencies are built.
