file(REMOVE_RECURSE
  "CMakeFiles/test_fp2.dir/test_fp2.cpp.o"
  "CMakeFiles/test_fp2.dir/test_fp2.cpp.o.d"
  "test_fp2"
  "test_fp2.pdb"
  "test_fp2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fp2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
