# Empty dependencies file for test_multiscalar.
# This may be replaced when dependencies are built.
