file(REMOVE_RECURSE
  "CMakeFiles/test_multiscalar.dir/test_multiscalar.cpp.o"
  "CMakeFiles/test_multiscalar.dir/test_multiscalar.cpp.o.d"
  "test_multiscalar"
  "test_multiscalar.pdb"
  "test_multiscalar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiscalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
