file(REMOVE_RECURSE
  "CMakeFiles/test_looped_romfile.dir/test_looped_romfile.cpp.o"
  "CMakeFiles/test_looped_romfile.dir/test_looped_romfile.cpp.o.d"
  "test_looped_romfile"
  "test_looped_romfile.pdb"
  "test_looped_romfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_looped_romfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
