file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_base.dir/test_fixed_base.cpp.o"
  "CMakeFiles/test_fixed_base.dir/test_fixed_base.cpp.o.d"
  "test_fixed_base"
  "test_fixed_base.pdb"
  "test_fixed_base[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
