# Empty compiler generated dependencies file for test_rfc6979.
# This may be replaced when dependencies are built.
