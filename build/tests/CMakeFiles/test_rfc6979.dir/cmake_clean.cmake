file(REMOVE_RECURSE
  "CMakeFiles/test_rfc6979.dir/test_rfc6979.cpp.o"
  "CMakeFiles/test_rfc6979.dir/test_rfc6979.cpp.o.d"
  "test_rfc6979"
  "test_rfc6979.pdb"
  "test_rfc6979[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rfc6979.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
