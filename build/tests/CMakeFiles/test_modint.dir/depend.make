# Empty dependencies file for test_modint.
# This may be replaced when dependencies are built.
