file(REMOVE_RECURSE
  "CMakeFiles/test_modint.dir/test_modint.cpp.o"
  "CMakeFiles/test_modint.dir/test_modint.cpp.o.d"
  "test_modint"
  "test_modint.pdb"
  "test_modint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
