file(REMOVE_RECURSE
  "CMakeFiles/test_dual_stream.dir/test_dual_stream.cpp.o"
  "CMakeFiles/test_dual_stream.dir/test_dual_stream.cpp.o.d"
  "test_dual_stream"
  "test_dual_stream.pdb"
  "test_dual_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
