# Empty dependencies file for test_dual_stream.
# This may be replaced when dependencies are built.
