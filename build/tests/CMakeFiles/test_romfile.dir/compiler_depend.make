# Empty compiler generated dependencies file for test_romfile.
# This may be replaced when dependencies are built.
