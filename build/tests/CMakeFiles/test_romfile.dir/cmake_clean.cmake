file(REMOVE_RECURSE
  "CMakeFiles/test_romfile.dir/test_romfile.cpp.o"
  "CMakeFiles/test_romfile.dir/test_romfile.cpp.o.d"
  "test_romfile"
  "test_romfile.pdb"
  "test_romfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_romfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
