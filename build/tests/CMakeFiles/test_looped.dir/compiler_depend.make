# Empty compiler generated dependencies file for test_looped.
# This may be replaced when dependencies are built.
