file(REMOVE_RECURSE
  "CMakeFiles/test_looped.dir/test_looped.cpp.o"
  "CMakeFiles/test_looped.dir/test_looped.cpp.o.d"
  "test_looped"
  "test_looped.pdb"
  "test_looped[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_looped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
