file(REMOVE_RECURSE
  "CMakeFiles/test_p256.dir/test_p256.cpp.o"
  "CMakeFiles/test_p256.dir/test_p256.cpp.o.d"
  "test_p256"
  "test_p256.pdb"
  "test_p256[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
