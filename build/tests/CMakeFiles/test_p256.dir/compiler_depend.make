# Empty compiler generated dependencies file for test_p256.
# This may be replaced when dependencies are built.
