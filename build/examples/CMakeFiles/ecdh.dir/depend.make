# Empty dependencies file for ecdh.
# This may be replaced when dependencies are built.
