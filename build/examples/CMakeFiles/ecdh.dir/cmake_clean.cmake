file(REMOVE_RECURSE
  "CMakeFiles/ecdh.dir/ecdh.cpp.o"
  "CMakeFiles/ecdh.dir/ecdh.cpp.o.d"
  "ecdh"
  "ecdh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
