# Empty dependencies file for its_message_auth.
# This may be replaced when dependencies are built.
