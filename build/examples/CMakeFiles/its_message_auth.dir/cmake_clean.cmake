file(REMOVE_RECURSE
  "CMakeFiles/its_message_auth.dir/its_message_auth.cpp.o"
  "CMakeFiles/its_message_auth.dir/its_message_auth.cpp.o.d"
  "its_message_auth"
  "its_message_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/its_message_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
