file(REMOVE_RECURSE
  "CMakeFiles/hw_verify.dir/hw_verify.cpp.o"
  "CMakeFiles/hw_verify.dir/hw_verify.cpp.o.d"
  "hw_verify"
  "hw_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
