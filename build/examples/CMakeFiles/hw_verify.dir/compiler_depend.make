# Empty compiler generated dependencies file for hw_verify.
# This may be replaced when dependencies are built.
