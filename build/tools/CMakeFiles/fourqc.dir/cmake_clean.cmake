file(REMOVE_RECURSE
  "CMakeFiles/fourqc.dir/fourqc.cpp.o"
  "CMakeFiles/fourqc.dir/fourqc.cpp.o.d"
  "fourqc"
  "fourqc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourqc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
