# Empty dependencies file for fourqc.
# This may be replaced when dependencies are built.
