file(REMOVE_RECURSE
  "CMakeFiles/gen_vectors.dir/gen_vectors.cpp.o"
  "CMakeFiles/gen_vectors.dir/gen_vectors.cpp.o.d"
  "gen_vectors"
  "gen_vectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
