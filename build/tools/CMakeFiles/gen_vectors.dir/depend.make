# Empty dependencies file for gen_vectors.
# This may be replaced when dependencies are built.
